//! The metrics registry: atomic counters, gauges, and log₂-bucket
//! histograms with two exporters (Prometheus text, diffable JSON).
//!
//! All instruments are lock-free on the record path (relaxed atomics;
//! per-instrument totals are exact, cross-instrument consistency is
//! best-effort as in every metrics system). Histograms use fixed
//! power-of-two buckets, so a quantile read from bucket counts is an
//! upper bound within a factor of two of the exact sample quantile, and
//! merging two histograms is a bucket-wise add — associative and
//! commutative, which lets per-session histograms fold into engine-wide
//! ones without coordination.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::{Deserialize, Serialize};

/// Number of log₂ buckets: bucket 0 holds the value 0, bucket `i ≥ 1`
/// holds `2^(i-1) ..= 2^i - 1`, and the last bucket absorbs the tail.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current total.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrites the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Index of the bucket holding `v`.
fn bucket_index(v: u64) -> usize {
    if v == 0 { 0 } else { (u64::BITS - v.leading_zeros()) as usize }.min(HISTOGRAM_BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (`u64::MAX` for the tail bucket).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= HISTOGRAM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The `p`-th percentile (upper bucket bound) derived from bucket counts.
///
/// For a non-empty histogram the estimate `e` of the exact sample
/// quantile `q` satisfies `q <= e <= 2 * max(q, 1)`: the rank-selected
/// bucket contains the exact quantile sample, and every value in bucket
/// `i ≥ 1` is at least half the bucket's upper bound.
pub fn percentile_from_buckets(buckets: &[u64], p: f64) -> u64 {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return 0;
    }
    let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
    let rank = rank.min(count);
    let mut seen = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        seen += c;
        if seen >= rank {
            return bucket_upper(i);
        }
    }
    bucket_upper(HISTOGRAM_BUCKETS - 1)
}

/// A fixed-bucket log₂ histogram of `u64` samples.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .field("max", &self.max())
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A fresh, empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (wraps only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The exact maximum sample seen.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `p`-th percentile from bucket counts, clamped to the exact
    /// maximum (see [`percentile_from_buckets`] for the error bound).
    pub fn percentile(&self, p: f64) -> u64 {
        let buckets = self.bucket_counts();
        percentile_from_buckets(&buckets, p).min(self.max())
    }

    /// Folds `other` into `self` (bucket-wise add; associative and
    /// commutative up to the relaxed-ordering caveat above).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
        self.max.fetch_max(other.max(), Ordering::Relaxed);
    }

    /// The raw bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect()
    }

    fn sample(&self, name: &str) -> HistogramSample {
        let mut buckets = self.bucket_counts();
        while buckets.last() == Some(&0) {
            buckets.pop();
        }
        let max = self.max();
        HistogramSample {
            name: name.to_string(),
            count: self.count(),
            sum: self.sum(),
            max,
            p50: percentile_from_buckets(&buckets, 50.0).min(max),
            p95: percentile_from_buckets(&buckets, 95.0).min(max),
            p99: percentile_from_buckets(&buckets, 99.0).min(max),
            buckets,
        }
    }
}

/// One counter in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSample {
    /// Metric name.
    pub name: String,
    /// Counter total at snapshot time.
    pub value: u64,
}

/// One gauge in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Metric name.
    pub name: String,
    /// Gauge value at snapshot time.
    pub value: i64,
}

/// One histogram in a [`MetricsSnapshot`]. `buckets[i]` is the count of
/// log₂ bucket `i` (trailing empty buckets trimmed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSample {
    /// Metric name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Exact maximum sample.
    pub max: u64,
    /// Median (bucket upper bound, clamped to `max`).
    pub p50: u64,
    /// 95th percentile (bucket upper bound, clamped to `max`).
    pub p95: u64,
    /// 99th percentile (bucket upper bound, clamped to `max`).
    pub p99: u64,
    /// Per-bucket counts, trailing zeros trimmed.
    pub buckets: Vec<u64>,
}

/// A point-in-time export of a [`MetricsRegistry`], sorted by metric name
/// so serialization is deterministic; diffable between iterations.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// All counters, sorted by name.
    #[serde(default)]
    pub counters: Vec<CounterSample>,
    /// All gauges, sorted by name.
    #[serde(default)]
    pub gauges: Vec<GaugeSample>,
    /// All histograms, sorted by name.
    #[serde(default)]
    pub histograms: Vec<HistogramSample>,
}

impl MetricsSnapshot {
    /// The change since `earlier`: counters and histogram buckets are
    /// subtracted (metrics absent earlier keep their full value), gauges
    /// and histogram maxima keep the current reading (a max cannot be
    /// un-seen), and histogram percentiles are recomputed from the
    /// subtracted buckets.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|c| {
                let before =
                    earlier.counters.iter().find(|e| e.name == c.name).map_or(0, |e| e.value);
                CounterSample { name: c.name.clone(), value: c.value.saturating_sub(before) }
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|h| {
                let empty: &[u64] = &[];
                let before = earlier
                    .histograms
                    .iter()
                    .find(|e| e.name == h.name)
                    .map_or(empty, |e| e.buckets.as_slice());
                let mut buckets: Vec<u64> = h
                    .buckets
                    .iter()
                    .enumerate()
                    .map(|(i, &b)| b.saturating_sub(before.get(i).copied().unwrap_or(0)))
                    .collect();
                while buckets.last() == Some(&0) {
                    buckets.pop();
                }
                let count: u64 = buckets.iter().sum();
                let before_sum =
                    earlier.histograms.iter().find(|e| e.name == h.name).map_or(0, |e| e.sum);
                HistogramSample {
                    name: h.name.clone(),
                    count,
                    sum: h.sum.saturating_sub(before_sum),
                    max: h.max,
                    p50: percentile_from_buckets(&buckets, 50.0).min(h.max),
                    p95: percentile_from_buckets(&buckets, 95.0).min(h.max),
                    p99: percentile_from_buckets(&buckets, 99.0).min(h.max),
                    buckets,
                }
            })
            .collect();
        MetricsSnapshot { counters, gauges: self.gauges.clone(), histograms }
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (`# TYPE` headers, cumulative `_bucket{le=...}` series).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!("# TYPE {} counter\n{} {}\n", c.name, c.name, c.value));
        }
        for g in &self.gauges {
            out.push_str(&format!("# TYPE {} gauge\n{} {}\n", g.name, g.name, g.value));
        }
        for h in &self.histograms {
            out.push_str(&format!("# TYPE {} histogram\n", h.name));
            let mut cumulative = 0u64;
            for (i, &b) in h.buckets.iter().enumerate() {
                cumulative += b;
                out.push_str(&format!(
                    "{}_bucket{{le=\"{}\"}} {}\n",
                    h.name,
                    bucket_upper(i),
                    cumulative
                ));
            }
            out.push_str(&format!("{}_bucket{{le=\"+Inf\"}} {}\n", h.name, h.count));
            out.push_str(&format!("{}_sum {}\n", h.name, h.sum));
            out.push_str(&format!("{}_count {}\n", h.name, h.count));
        }
        out
    }
}

/// A named registry of instruments, shared engine-wide; get-or-register
/// by name, export as a [`MetricsSnapshot`] or Prometheus text.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: Mutex<Vec<(String, Arc<Counter>)>>,
    gauges: Mutex<Vec<(String, Arc<Gauge>)>>,
    histograms: Mutex<Vec<(String, Arc<Histogram>)>>,
}

fn get_or_insert<T: Default>(list: &Mutex<Vec<(String, Arc<T>)>>, name: &str) -> Arc<T> {
    let mut list = list.lock().expect("metrics registry poisoned");
    if let Some((_, v)) = list.iter().find(|(n, _)| n == name) {
        return Arc::clone(v);
    }
    let v = Arc::new(T::default());
    list.push((name.to_string(), Arc::clone(&v)));
    v
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Exports every instrument, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<CounterSample> = self
            .counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, c)| CounterSample { name: n.clone(), value: c.get() })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut gauges: Vec<GaugeSample> = self
            .gauges
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, g)| GaugeSample { name: n.clone(), value: g.get() })
            .collect();
        gauges.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSample> = self
            .histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(n, h)| h.sample(n))
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { counters, gauges, histograms }
    }

    /// Exports the registry in Prometheus text format.
    pub fn to_prometheus(&self) -> String {
        self.snapshot().to_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_covers_the_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            assert_eq!(bucket_index(bucket_upper(i)), i, "upper bound stays in its bucket");
            assert_eq!(bucket_index(bucket_upper(i) + 1), i + 1);
        }
    }

    #[test]
    fn histogram_percentiles_bound_the_exact_quantiles() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.max(), 1000);
        assert_eq!(h.sum(), 500_500);
        // Exact p50 is 500; the bucket estimate must be in [500, 1000].
        let p50 = h.percentile(50.0);
        assert!((500..=1000).contains(&p50), "p50={p50}");
        let p99 = h.percentile(99.0);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(h.percentile(100.0), 1000);
    }

    #[test]
    fn merge_is_bucketwise_addition() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 5, 9, 100] {
            a.record(v);
        }
        for v in [2u64, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 6);
        assert_eq!(a.sum(), 1117);
        assert_eq!(a.max(), 1000);
    }

    #[test]
    fn registry_snapshot_sorted_and_diffable() {
        let reg = MetricsRegistry::new();
        reg.counter("uei_b_total").add(5);
        reg.counter("uei_a_total").add(2);
        reg.gauge("uei_pool").set(-3);
        reg.histogram("uei_lat_us").record(7);
        let s1 = reg.snapshot();
        assert_eq!(s1.counters[0].name, "uei_a_total");
        reg.counter("uei_b_total").add(10);
        reg.histogram("uei_lat_us").record(9);
        let s2 = reg.snapshot();
        let d = s2.diff(&s1);
        assert_eq!(d.counters.iter().find(|c| c.name == "uei_b_total").unwrap().value, 10);
        assert_eq!(d.counters.iter().find(|c| c.name == "uei_a_total").unwrap().value, 0);
        assert_eq!(d.histograms[0].count, 1);
    }

    #[test]
    fn prometheus_export_has_type_lines_and_inf_bucket() {
        let reg = MetricsRegistry::new();
        reg.counter("uei_iterations_total").add(3);
        reg.histogram("uei_lat_us").record(5);
        let text = reg.to_prometheus();
        assert!(text.contains("# TYPE uei_iterations_total counter"));
        assert!(text.contains("uei_iterations_total 3"));
        assert!(text.contains("# TYPE uei_lat_us histogram"));
        assert!(text.contains("uei_lat_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("uei_lat_us_sum 5"));
    }

    #[test]
    fn snapshot_roundtrips_through_serde() {
        let reg = MetricsRegistry::new();
        reg.counter("uei_a_total").add(1);
        reg.gauge("uei_g").set(4);
        reg.histogram("uei_h").record(3);
        let snap = reg.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
