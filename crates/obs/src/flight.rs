//! The flight recorder: a fixed-capacity ring of recent structured
//! events per session, dumped as a JSON [`Postmortem`] by the
//! multi-session supervisor on panic, recovery, or a degraded run.
//!
//! The record path is a single atomic cursor bump plus one slot store —
//! writers never wait on each other for different slots, and the ring
//! never grows, so a session in distress cannot be pushed over by its
//! own black box. Readers snapshot whatever slots are populated; under a
//! racing writer a reader may miss the newest event, never see a torn
//! one.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{Deserialize, Serialize};

/// What happened. Serialized as the variant name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FlightEventKind {
    /// A burst of shared-cache evictions within one iteration.
    EvictionStorm,
    /// Transient read faults absorbed by the retry policy.
    Retry,
    /// The fallback ladder skipped past failed candidate cells.
    Fallback,
    /// A region swap deferred to hold the latency threshold σ.
    DeferredSwap,
    /// An iteration completed in degraded mode (retries or fallbacks).
    DegradedIteration,
    /// A synchronous load exceeded the σ deadline.
    SigmaDeadlineMiss,
    /// The incremental-rescore locality prune skipped shard sweeps.
    ShardPrune,
    /// The write-ahead journal rotated to a fresh segment.
    JournalRotation,
    /// A journal snapshot was published (older segments collected).
    JournalSnapshot,
    /// A crashed session was recovered from its journal.
    Recovery,
    /// A session thread panicked under supervision.
    Panic,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlightEvent {
    /// Monotonic sequence number within the recorder (assigned on record).
    #[serde(default)]
    pub seq: u64,
    /// Ordinal of the session that recorded the event (0 = standalone).
    #[serde(default)]
    pub session: u64,
    /// Labels acquired when the event fired (the loop's iteration proxy).
    #[serde(default)]
    pub iteration: u64,
    /// Event class.
    pub kind: FlightEventKind,
    /// Free-form context (counter deltas, cell ids, error text).
    #[serde(default)]
    pub detail: String,
}

/// Fixed-capacity event ring; the oldest event is overwritten.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Vec<Mutex<Option<FlightEvent>>>,
    next: AtomicU64,
}

impl FlightRecorder {
    /// A ring holding up to `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Slots in the ring.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events recorded over the recorder's lifetime (≥ resident events).
    pub fn total_recorded(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Records `event`, stamping and returning its sequence number.
    pub fn record(&self, mut event: FlightEvent) -> u64 {
        let seq = self.next.fetch_add(1, Ordering::Relaxed);
        event.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("flight slot poisoned") = Some(event);
        seq
    }

    /// The resident events in sequence order (oldest first).
    pub fn events(&self) -> Vec<FlightEvent> {
        let mut events: Vec<FlightEvent> = self
            .slots
            .iter()
            .filter_map(|s| s.lock().expect("flight slot poisoned").clone())
            .collect();
        events.sort_by_key(|e| e.seq);
        events
    }
}

/// The supervisor's post-mortem artifact: why it was written plus the
/// recent flight events of every session of the engine. Round-trips
/// through serde so artifacts are machine-checkable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Postmortem {
    /// `"panic"`, `"recovered"`, or `"degraded"`.
    pub cause: String,
    /// Human-readable context (panic payload, error text, run summary).
    pub reason: String,
    /// Sessions whose recorders contributed events.
    #[serde(default)]
    pub sessions: u64,
    /// Merged recent events, ordered by (session, seq).
    #[serde(default)]
    pub events: Vec<FlightEvent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: FlightEventKind, iteration: u64) -> FlightEvent {
        FlightEvent { seq: 0, session: 1, iteration, kind, detail: String::new() }
    }

    #[test]
    fn ring_overwrites_oldest() {
        let ring = FlightRecorder::new(3);
        for i in 0..5 {
            ring.record(ev(FlightEventKind::Retry, i));
        }
        let events = ring.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events.iter().map(|e| e.iteration).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ring.total_recorded(), 5);
        assert_eq!(ring.capacity(), 3);
    }

    #[test]
    fn zero_capacity_is_clamped() {
        let ring = FlightRecorder::new(0);
        ring.record(ev(FlightEventKind::Panic, 1));
        assert_eq!(ring.events().len(), 1);
    }

    #[test]
    fn postmortem_roundtrips_through_serde() {
        let pm = Postmortem {
            cause: "panic".to_string(),
            reason: "session panicked: boom".to_string(),
            sessions: 2,
            events: vec![
                ev(FlightEventKind::EvictionStorm, 3),
                ev(FlightEventKind::JournalRotation, 7),
            ],
        };
        let json = serde_json::to_string_pretty(&pm).unwrap();
        let back: Postmortem = serde_json::from_str(&json).unwrap();
        assert_eq!(back, pm);
        assert!(json.contains("\"EvictionStorm\""));
    }
}
