//! Property tests for the metrics pillar: histogram percentile error
//! bounds, merge associativity/commutativity, and exact concurrent
//! counter accounting across 1/2/8 threads (mirroring the shared-cache
//! concurrency tests in `uei-storage`).

use std::sync::Arc;

use proptest::prelude::*;
use uei_obs::{Counter, Histogram, MetricsRegistry};

/// The exact `p`-th percentile of `samples` under the same rank rule the
/// histogram uses (`ceil(p/100 * n)`-th smallest, 1-based).
fn exact_percentile(samples: &mut [u64], p: f64) -> u64 {
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil().max(1.0) as usize;
    samples[rank.min(samples.len()) - 1]
}

fn filled(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn percentiles_stay_within_the_log2_bucket_error_bound(
        mut samples in proptest::collection::vec(0u64..1_000_000_000, 1..300),
        p in 1.0f64..100.0,
    ) {
        let h = filled(&samples);
        let estimate = h.percentile(p);
        let exact = exact_percentile(&mut samples, p);
        // The estimate is the upper bound of the bucket holding the exact
        // rank sample, clamped to the true max: never below the exact
        // quantile, never more than twice it (+1 for the 0/1 buckets).
        prop_assert!(estimate >= exact, "estimate {estimate} < exact {exact}");
        prop_assert!(
            estimate <= exact.saturating_mul(2).max(1),
            "estimate {estimate} breaks the 2x bound of exact {exact}"
        );
        prop_assert_eq!(h.max(), *samples.last().unwrap());
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
    }

    #[test]
    fn merge_is_commutative_and_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..120),
        b in proptest::collection::vec(0u64..1_000_000, 0..120),
        c in proptest::collection::vec(0u64..1_000_000, 0..120),
    ) {
        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c) == b ⊔ (a ⊔ c): bucket counts,
        // count, sum, and max all agree, so every derived percentile does.
        let ab_c = filled(&a);
        ab_c.merge(&filled(&b));
        ab_c.merge(&filled(&c));

        let a_bc = filled(&b);
        a_bc.merge(&filled(&c));
        let lhs = filled(&a);
        lhs.merge(&a_bc);

        let commuted = filled(&b);
        commuted.merge(&filled(&a));
        commuted.merge(&filled(&c));

        for h in [&lhs, &commuted] {
            prop_assert_eq!(h.bucket_counts(), ab_c.bucket_counts());
            prop_assert_eq!(h.count(), ab_c.count());
            prop_assert_eq!(h.sum(), ab_c.sum());
            prop_assert_eq!(h.max(), ab_c.max());
            for p in [50.0, 95.0, 99.0] {
                prop_assert_eq!(h.percentile(p), ab_c.percentile(p));
            }
        }
    }

    #[test]
    fn concurrent_counters_account_exactly(
        per_thread in 1u64..2_000,
        increment in 1u64..5,
    ) {
        // The same total must be observed no matter how many threads
        // split the work — counters lose nothing under contention.
        for threads in [1usize, 2, 8] {
            let counter = Arc::new(Counter::new());
            let hist = Arc::new(Histogram::new());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let counter = Arc::clone(&counter);
                    let hist = Arc::clone(&hist);
                    scope.spawn(move || {
                        for _ in 0..per_thread {
                            counter.add(increment);
                            hist.record(increment);
                        }
                    });
                }
            });
            let n = threads as u64 * per_thread;
            prop_assert_eq!(counter.get(), n * increment);
            prop_assert_eq!(hist.count(), n);
            prop_assert_eq!(hist.sum(), n * increment);
        }
    }

    #[test]
    fn registry_returns_the_same_instrument_across_threads(
        adds in proptest::collection::vec(1u64..100, 8..32),
    ) {
        let registry = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for chunk in adds.chunks(4) {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    for &v in chunk {
                        registry.counter("uei_shared_total").add(v);
                    }
                });
            }
        });
        let snap = registry.snapshot();
        let total = snap.counters.iter().find(|c| c.name == "uei_shared_total").unwrap();
        prop_assert_eq!(total.value, adds.iter().sum::<u64>());
    }
}
