//! Target-interest-region generation.
//!
//! The paper's exploration tasks each have one relevant region whose
//! complexity is controlled by its data-space coverage: "Small regions
//! have cardinality with an average of 0.1 % of the entire experimental
//! dataset, medium regions a cardinality of 0.4 %, and large regions a
//! cardinality of 0.8 %" (§4.1), with the region's dimensionality equal to
//! the dataset's.
//!
//! A region is parameterized by a center and per-dimension widths (the
//! form Eq. 4 needs). Generation picks a random data row as the center
//! (so regions are never empty) and binary-searches a scale factor on the
//! half-widths until the region's cardinality hits the requested fraction.

use uei_learn::KdTree;
use uei_types::{DataPoint, Region, Result, Rng, Schema, UeiError};

/// The paper's three region-size classes (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionSize {
    /// 0.1 % of the dataset.
    Small,
    /// 0.4 % of the dataset.
    Medium,
    /// 0.8 % of the dataset.
    Large,
}

impl RegionSize {
    /// The target cardinality as a fraction of the dataset.
    pub fn fraction(self) -> f64 {
        match self {
            RegionSize::Small => 0.001,
            RegionSize::Medium => 0.004,
            RegionSize::Large => 0.008,
        }
    }

    /// Display name used in reports ("S"/"M"/"L" in the paper's figures).
    pub fn name(self) -> &'static str {
        match self {
            RegionSize::Small => "small",
            RegionSize::Medium => "medium",
            RegionSize::Large => "large",
        }
    }

    /// All three classes, in figure order.
    pub fn all() -> [RegionSize; 3] {
        [RegionSize::Small, RegionSize::Medium, RegionSize::Large]
    }
}

/// A generated target interest region with its ground truth.
#[derive(Debug, Clone)]
pub struct TargetRegion {
    /// The closed region (center ± half-widths).
    pub region: Region,
    /// Region center (Eq. 4's `c`).
    pub center: Vec<f64>,
    /// Per-dimension half-widths (Eq. 4's `w`).
    pub half_widths: Vec<f64>,
    /// Row ids inside the region, ascending.
    pub relevant_ids: Vec<u64>,
    /// Achieved cardinality fraction.
    pub fraction: f64,
}

/// Generates a target region of the requested size class over `rows`.
///
/// The achieved cardinality is within ±30 % of the class target (or the
/// closest achievable for tiny datasets). Deterministic per `rng` state.
pub fn generate_target_region(
    rows: &[DataPoint],
    schema: &Schema,
    size: RegionSize,
    rng: &mut Rng,
) -> Result<TargetRegion> {
    generate_target_region_fraction(rows, schema, size.fraction(), rng)
}

/// [`generate_target_region`] with an arbitrary cardinality fraction.
pub fn generate_target_region_fraction(
    rows: &[DataPoint],
    schema: &Schema,
    fraction: f64,
    rng: &mut Rng,
) -> Result<TargetRegion> {
    if rows.is_empty() {
        return Err(UeiError::invalid_config("cannot place a region in an empty dataset"));
    }
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(UeiError::invalid_config(format!("bad target fraction {fraction}")));
    }
    let target = ((rows.len() as f64 * fraction).round() as usize).max(1);
    let tree = KdTree::build(rows.iter().map(|r| r.values.clone()).collect())?;

    // Base half-widths proportional to each attribute's domain, so the
    // region has the same relative extent in every dimension (equal
    // data-space coverage per dimension, like the paper's tasks).
    let base: Vec<f64> = schema.attributes().iter().map(|a| 0.5 * a.width().max(1e-12)).collect();

    // Try a handful of centers; clustered data can make some centers
    // unable to reach the target cardinality at reasonable scales.
    let mut best: Option<TargetRegion> = None;
    for _attempt in 0..8 {
        let center = rng.choose(rows).values.clone();
        // Binary search the scale s ∈ (0, 1]: half-widths = s · base.
        let (mut lo, mut hi) = (1e-6f64, 1.0f64);
        let mut best_here: Option<(f64, Vec<u64>)> = None;
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let widths: Vec<f64> = base.iter().map(|b| b * mid).collect();
            let region = Region::from_center(&center, &widths)?;
            let count = tree.range_query(&region)?.len();
            if count >= target {
                hi = mid;
            } else {
                lo = mid;
            }
            let better = match &best_here {
                None => true,
                Some((s, ids)) => {
                    (count as i64 - target as i64).abs() < (ids.len() as i64 - target as i64).abs()
                        || ((count as i64 - target as i64).abs()
                            == (ids.len() as i64 - target as i64).abs()
                            && mid < *s)
                }
            };
            if better {
                let ids: Vec<u64> = tree
                    .range_query(&Region::from_center(&center, &widths)?)?
                    .into_iter()
                    .map(|i| rows[i].id.as_u64())
                    .collect();
                best_here = Some((mid, ids));
            }
        }
        if let Some((scale, mut ids)) = best_here {
            ids.sort_unstable();
            let achieved = ids.len() as f64 / rows.len() as f64;
            let widths: Vec<f64> = base.iter().map(|b| b * scale).collect();
            let candidate = TargetRegion {
                region: Region::from_center(&center, &widths)?,
                center,
                half_widths: widths,
                relevant_ids: ids,
                fraction: achieved,
            };
            let better = match &best {
                None => true,
                Some(b) => (candidate.fraction - fraction).abs() < (b.fraction - fraction).abs(),
            };
            if better {
                best = Some(candidate);
            }
            // Good enough?
            if let Some(b) = &best {
                if (b.fraction - fraction).abs() <= 0.3 * fraction {
                    break;
                }
            }
        }
    }
    best.ok_or_else(|| UeiError::invalid_state("failed to place a target region"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_sdss_like, SynthConfig};
    use uei_types::Schema;

    #[test]
    fn size_fractions_match_table_1() {
        assert_eq!(RegionSize::Small.fraction(), 0.001);
        assert_eq!(RegionSize::Medium.fraction(), 0.004);
        assert_eq!(RegionSize::Large.fraction(), 0.008);
        assert_eq!(RegionSize::all().len(), 3);
        assert_eq!(RegionSize::Small.name(), "small");
    }

    #[test]
    fn generated_region_hits_cardinality() {
        let rows = generate_sdss_like(&SynthConfig { rows: 20_000, ..Default::default() });
        let schema = Schema::sdss();
        let mut rng = Rng::new(11);
        for size in RegionSize::all() {
            let target = generate_target_region(&rows, &schema, size, &mut rng).unwrap();
            let want = size.fraction();
            assert!(
                (target.fraction - want).abs() <= 0.5 * want,
                "{}: achieved {} vs target {want}",
                size.name(),
                target.fraction
            );
            assert!(!target.relevant_ids.is_empty());
        }
    }

    #[test]
    fn relevant_ids_match_region_membership() {
        let rows = generate_sdss_like(&SynthConfig { rows: 5_000, ..Default::default() });
        let schema = Schema::sdss();
        let mut rng = Rng::new(3);
        let target = generate_target_region(&rows, &schema, RegionSize::Large, &mut rng).unwrap();
        let brute: Vec<u64> = rows
            .iter()
            .filter(|r| target.region.contains(&r.values).unwrap())
            .map(|r| r.id.as_u64())
            .collect();
        assert_eq!(target.relevant_ids, brute);
    }

    #[test]
    fn center_is_inside_and_widths_positive() {
        let rows = generate_sdss_like(&SynthConfig { rows: 3_000, ..Default::default() });
        let schema = Schema::sdss();
        let mut rng = Rng::new(9);
        let t = generate_target_region(&rows, &schema, RegionSize::Medium, &mut rng).unwrap();
        assert!(t.region.contains(&t.center).unwrap());
        assert!(t.half_widths.iter().all(|&w| w > 0.0));
        assert_eq!(t.half_widths.len(), 5);
    }

    #[test]
    fn validations() {
        let schema = Schema::sdss();
        let mut rng = Rng::new(1);
        assert!(generate_target_region(&[], &schema, RegionSize::Small, &mut rng).is_err());
        let rows = generate_sdss_like(&SynthConfig { rows: 100, ..Default::default() });
        assert!(generate_target_region_fraction(&rows, &schema, 0.0, &mut rng).is_err());
        assert!(generate_target_region_fraction(&rows, &schema, 1.5, &mut rng).is_err());
    }

    #[test]
    fn deterministic_per_rng_seed() {
        let rows = generate_sdss_like(&SynthConfig { rows: 2_000, ..Default::default() });
        let schema = Schema::sdss();
        let a =
            generate_target_region(&rows, &schema, RegionSize::Small, &mut Rng::new(5)).unwrap();
        let b =
            generate_target_region(&rows, &schema, RegionSize::Small, &mut Rng::new(5)).unwrap();
        assert_eq!(a.relevant_ids, b.relevant_ids);
        assert_eq!(a.center, b.center);
    }
}
