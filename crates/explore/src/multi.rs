//! Concurrent multi-session exploration over one shared engine.
//!
//! One [`EngineCore`] serves any number of independent analysts: each
//! session gets its own [`UeiBackend`] (private index-point scores,
//! unlabeled cache `U`, virtual disk clock, ghost cache ledger) over the
//! engine's `Arc`-shared store, manifest, grid, mapping, and decoded-chunk
//! cache — zero data copies per session.
//!
//! Because each session's *modeled* I/O is decided by its private ghost
//! ledger (never by the momentary contents of the shared cache), a
//! session's [`SessionResult`] is bit-identical whether it runs alone,
//! sequentially after other sessions, or concurrently with them — only
//! wall-clock times differ. [`run_sessions`] is the sequential baseline and
//! [`run_sessions_concurrently`] the N-thread path; the `multi_session`
//! integration test pins the two against each other.
//!
//! ## Supervision
//!
//! The concurrent path is a *supervisor* ([`run_sessions_supervised`]):
//! each session thread runs under `catch_unwind`, so one panicking or
//! erroring session never poisons its siblings or the shared cache (all
//! engine-side locks are `parking_lot`, which does not poison). A dead
//! session with a [`SessionSpec::journal_dir`] is recovered from its
//! write-ahead journal and driven to completion (DESIGN.md §13); without
//! one — or when recovery itself fails — it is reported as aborted in its
//! [`SessionOutcome`], and [`summarize_outcomes`] carries the
//! `aborted`/`recovered` counts into the [`RunSummary`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::thread;

use uei_index::engine::EngineCore;
use uei_types::{Result, Rng, UeiError};

use crate::backend::UeiBackend;
use crate::oracle::Oracle;
use crate::report::{average_traces, RunSummary};
use crate::session::{ExplorationSession, SessionConfig, SessionResult};

/// Everything one session of a multi-session run needs: the loop
/// parameters (with the session's master seed) plus the backend's own
/// sampling knobs.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Exploration-loop parameters; `session.seed` is the per-session
    /// master seed, so give every session a distinct one.
    pub session: SessionConfig,
    /// Seed of the uniform γ-sample that fills the session's unlabeled
    /// cache `U`.
    pub sample_seed: u64,
    /// Uniform-sample size γ.
    pub gamma: usize,
    /// Root of this session's write-ahead journal. `Some` journals every
    /// label (durability knobs come from the engine's
    /// `UeiConfig::journal`) and lets the supervisor resume the session
    /// after a crash; `None` runs without durability. Give every session
    /// its own empty directory.
    pub journal_dir: Option<PathBuf>,
    /// Where the supervisor dumps a flight-recorder postmortem
    /// (`postmortem-<cause>-<seed>.json`) when this session panics,
    /// errors, is recovered, or completes with degraded iterations.
    /// Requires the engine's telemetry to be enabled
    /// (`UeiConfig::telemetry`); `None` — or disabled telemetry — skips
    /// the dump. Dumps are best-effort and never fail the supervisor.
    pub postmortem_dir: Option<PathBuf>,
}

/// What became of one supervised session.
#[derive(Debug)]
pub struct SessionOutcome {
    /// The completed result; `None` if the session aborted.
    pub result: Option<SessionResult>,
    /// The session died (panic or error) and was successfully resumed
    /// from its journal and run to completion.
    pub recovered: bool,
    /// The session died and could not be recovered (no journal, or
    /// recovery failed).
    pub aborted: bool,
    /// The failure that killed the session (and, for aborted outcomes,
    /// why recovery did not save it).
    pub error: Option<String>,
}

/// How the supervisor drives one session. [`run_sessions_supervised`]
/// passes [`run_one_session`]; tests and benches substitute runners that
/// inject failures.
pub type SessionRunner<'r> =
    dyn Fn(&EngineCore, &Oracle, &SessionSpec) -> Result<SessionResult> + Sync + 'r;

/// Opens one engine session and runs it to completion, journaling to
/// [`SessionSpec::journal_dir`] when set.
///
/// This is the unit both runners share, and the sequential baseline the
/// concurrent path must reproduce bit-for-bit (wall-clock fields aside).
pub fn run_one_session(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
) -> Result<SessionResult> {
    let mut rng = Rng::new(spec.sample_seed);
    let mut backend = UeiBackend::from_engine(engine, spec.gamma, &mut rng)?;
    // The session's response times come from its own virtual clock.
    let tracker = backend.index().store().tracker().clone();
    let mut session = ExplorationSession::new(&mut backend, oracle, spec.session.clone(), tracker);
    if let Some(dir) = &spec.journal_dir {
        session.attach_journal(dir, engine.config().journal)?;
    }
    session.run()
}

/// Resumes a crashed session of `spec` from its journal and runs it to
/// completion. Requires [`SessionSpec::journal_dir`]. The rebuilt backend
/// uses the same sampling seed as the original, so the recovered session's
/// future traces are bit-identical to an uninterrupted run's.
pub fn recover_one_session(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
) -> Result<SessionResult> {
    let dir = spec
        .journal_dir
        .as_ref()
        .ok_or_else(|| UeiError::invalid_state("session has no journal to recover from"))?;
    let mut rng = Rng::new(spec.sample_seed);
    let mut backend = UeiBackend::from_engine(engine, spec.gamma, &mut rng)?;
    let tracker = backend.index().store().tracker().clone();
    let (session, state) = ExplorationSession::recover(
        &mut backend,
        oracle,
        spec.session.clone(),
        tracker,
        dir,
        engine.config().journal,
    )?;
    session.run_from(state)
}

/// Runs the sessions one after another on the calling thread, in spec
/// order.
pub fn run_sessions(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
) -> Result<Vec<SessionResult>> {
    specs.iter().map(|spec| run_one_session(engine, oracle, spec)).collect()
}

/// Runs every session concurrently under supervision, one OS thread per
/// spec. Outcomes come back in spec order regardless of thread
/// interleaving; a session that panics or errors is recovered from its
/// journal when it has one, and reported aborted otherwise — its siblings
/// always run to completion either way.
pub fn run_sessions_supervised(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
) -> Vec<SessionOutcome> {
    run_sessions_supervised_with(engine, oracle, specs, &run_one_session)
}

/// [`run_sessions_supervised`] with a custom per-session runner (the seam
/// fault-injection tests use to plant panicking backends).
pub fn run_sessions_supervised_with(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
    runner: &SessionRunner<'_>,
) -> Vec<SessionOutcome> {
    thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| scope.spawn(move || supervise_one(engine, oracle, spec, runner)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                // `supervise_one` catches session panics, so a join error
                // can only come from the supervision scaffolding itself.
                h.join().unwrap_or_else(|_| SessionOutcome {
                    result: None,
                    recovered: false,
                    aborted: true,
                    error: Some("supervisor thread panicked".to_string()),
                })
            })
            .collect()
    })
}

/// Runs every session concurrently, one OS thread per spec, against the
/// shared engine. Results come back in spec order regardless of thread
/// interleaving.
///
/// This is the strict façade over [`run_sessions_supervised`]: every
/// session still runs to completion under supervision (one dying session
/// cannot poison its siblings), but any aborted session turns the whole
/// call into an error. Callers that want per-session outcomes use the
/// supervised form directly.
pub fn run_sessions_concurrently(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
) -> Result<Vec<SessionResult>> {
    run_sessions_supervised(engine, oracle, specs)
        .into_iter()
        .map(|outcome| {
            outcome.result.ok_or_else(|| {
                UeiError::invalid_state(format!(
                    "session aborted: {}",
                    outcome.error.unwrap_or_else(|| "unknown failure".to_string())
                ))
            })
        })
        .collect()
}

fn supervise_one(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
    runner: &SessionRunner<'_>,
) -> SessionOutcome {
    match catch_unwind(AssertUnwindSafe(|| runner(engine, oracle, spec))) {
        Ok(Ok(result)) => {
            if result.traces.iter().any(|t| t.counters.degraded) {
                write_postmortem(
                    engine,
                    spec,
                    "degraded",
                    "session completed but served degraded iterations from the resident pool",
                );
            }
            SessionOutcome { result: Some(result), recovered: false, aborted: false, error: None }
        }
        Ok(Err(e)) => {
            attempt_recovery(engine, oracle, spec, "error", format!("session failed: {e}"))
        }
        Err(payload) => attempt_recovery(
            engine,
            oracle,
            spec,
            "panic",
            format!("session panicked: {}", panic_message(payload.as_ref())),
        ),
    }
}

/// Dumps the engine's flight-recorder ring to
/// [`SessionSpec::postmortem_dir`] as a pretty-printed
/// [`uei_obs::Postmortem`]. Best effort: disabled telemetry, a missing
/// directory, or an I/O error silently skips the dump — a postmortem must
/// never be a second way for a session to fail.
fn write_postmortem(engine: &EngineCore, spec: &SessionSpec, cause: &str, reason: &str) {
    let Some(dir) = &spec.postmortem_dir else { return };
    let telemetry = engine.telemetry();
    if !telemetry.enabled() {
        return;
    }
    let postmortem = telemetry.postmortem(cause, reason);
    let Ok(json) = serde_json::to_string_pretty(&postmortem) else { return };
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let _ =
        std::fs::write(dir.join(format!("postmortem-{cause}-{}.json", spec.session.seed)), json);
}

/// Tries to resume a dead session from its journal; reports it aborted if
/// it has none or recovery fails. Recovery runs under its own
/// `catch_unwind` so even a panicking replay cannot take down the
/// supervisor.
fn attempt_recovery(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
    kind: &str,
    cause: String,
) -> SessionOutcome {
    if spec.journal_dir.is_none() {
        write_postmortem(engine, spec, kind, &cause);
        return SessionOutcome {
            result: None,
            recovered: false,
            aborted: true,
            error: Some(cause),
        };
    }
    let error = match catch_unwind(AssertUnwindSafe(|| recover_one_session(engine, oracle, spec))) {
        Ok(Ok(result)) => {
            write_postmortem(engine, spec, "recovered", &cause);
            return SessionOutcome {
                result: Some(result),
                recovered: true,
                aborted: false,
                error: Some(cause),
            };
        }
        Ok(Err(e)) => format!("{cause}; recovery failed: {e}"),
        Err(payload) => format!("{cause}; recovery panicked: {}", panic_message(payload.as_ref())),
    };
    write_postmortem(engine, spec, kind, &error);
    SessionOutcome { result: None, recovered: false, aborted: true, error: Some(error) }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "non-string panic payload"
    }
}

/// Aggregates supervised outcomes into a [`RunSummary`]: the completed
/// sessions are averaged as usual and the `aborted_runs` /
/// `recovered_runs` counters report the supervisor's interventions. All
/// sessions aborted yields an empty summary rather than a panic.
pub fn summarize_outcomes(outcomes: &[SessionOutcome]) -> RunSummary {
    let results: Vec<SessionResult> = outcomes.iter().filter_map(|o| o.result.clone()).collect();
    let mut summary = if results.is_empty() {
        RunSummary {
            backend: String::new(),
            runs: 0,
            series: Vec::new(),
            final_f_measure_mean: 0.0,
            overall_response_virtual_ms: 0.0,
            p95_response_virtual_ms: 0.0,
            cache_hit_ratio: 0.0,
            cache_evictions_per_run: 0.0,
            prefetch_bytes_per_run: 0.0,
            retries_per_run: 0.0,
            fallback_cells_per_run: 0.0,
            degraded_iterations_per_run: 0.0,
            points_rescored_per_run: 0.0,
            points_cached_per_run: 0.0,
            shards_touched_per_run: 0.0,
            aborted_runs: 0,
            recovered_runs: 0,
            p95_response_wall_ms: 0.0,
            replayed_traces: 0,
            phase_ms: Vec::new(),
        }
    } else {
        average_traces(&results)
    };
    summary.aborted_runs = outcomes.iter().filter(|o| o.aborted).count();
    summary.recovered_runs = outcomes.iter().filter(|o| o.recovered).count();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_sdss_like, SynthConfig};
    use crate::workload::generate_target_region_fraction;
    use std::sync::Arc;
    use uei_index::config::UeiConfig;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::Schema;

    #[test]
    fn concurrent_sessions_complete_and_share_one_cache() {
        let rows = generate_sdss_like(&SynthConfig { rows: 2500, ..Default::default() });
        let mut rng = Rng::new(13);
        let target =
            generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
        let oracle = Oracle::new(target);

        let dir = uei_storage::TempDir::new("multi-smoke");
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker,
        )
        .unwrap();
        let engine = EngineCore::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, prefetch: false, ..UeiConfig::default() },
        )
        .unwrap();

        let specs: Vec<SessionSpec> = (0..4)
            .map(|i| SessionSpec {
                session: SessionConfig {
                    max_labels: 8,
                    bootstrap_size: 100,
                    eval_sample: 100,
                    seed: 100 + i,
                    ..SessionConfig::default()
                },
                sample_seed: 200 + i,
                gamma: 150,
                journal_dir: None,
                postmortem_dir: None,
            })
            .collect();

        let results = run_sessions_concurrently(&engine, &oracle, &specs).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(engine.sessions_opened(), 4);
        for r in &results {
            assert_eq!(r.backend, "uei");
            assert!(r.labels_used >= 2);
        }
        // All four sessions fed the one engine-wide cache.
        let agg = engine.cache_stats();
        assert!(agg.hits + agg.misses > 0, "shared cache saw traffic");
    }
}
