//! Concurrent multi-session exploration over one shared engine.
//!
//! One [`EngineCore`] serves any number of independent analysts: each
//! session gets its own [`UeiBackend`] (private index-point scores,
//! unlabeled cache `U`, virtual disk clock, ghost cache ledger) over the
//! engine's `Arc`-shared store, manifest, grid, mapping, and decoded-chunk
//! cache — zero data copies per session.
//!
//! Because each session's *modeled* I/O is decided by its private ghost
//! ledger (never by the momentary contents of the shared cache), a
//! session's [`SessionResult`] is bit-identical whether it runs alone,
//! sequentially after other sessions, or concurrently with them — only
//! wall-clock times differ. [`run_sessions`] is the sequential baseline and
//! [`run_sessions_concurrently`] the N-thread path; the `multi_session`
//! integration test pins the two against each other.

use std::thread;

use uei_index::engine::EngineCore;
use uei_types::{Result, Rng, UeiError};

use crate::backend::UeiBackend;
use crate::oracle::Oracle;
use crate::session::{ExplorationSession, SessionConfig, SessionResult};

/// Everything one session of a multi-session run needs: the loop
/// parameters (with the session's master seed) plus the backend's own
/// sampling knobs.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Exploration-loop parameters; `session.seed` is the per-session
    /// master seed, so give every session a distinct one.
    pub session: SessionConfig,
    /// Seed of the uniform γ-sample that fills the session's unlabeled
    /// cache `U`.
    pub sample_seed: u64,
    /// Uniform-sample size γ.
    pub gamma: usize,
}

/// Opens one engine session and runs it to completion.
///
/// This is the unit both runners share, and the sequential baseline the
/// concurrent path must reproduce bit-for-bit (wall-clock fields aside).
pub fn run_one_session(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
) -> Result<SessionResult> {
    let mut rng = Rng::new(spec.sample_seed);
    let mut backend = UeiBackend::from_engine(engine, spec.gamma, &mut rng)?;
    // The session's response times come from its own virtual clock.
    let tracker = backend.index().store().tracker().clone();
    ExplorationSession::new(&mut backend, oracle, spec.session.clone(), tracker).run()
}

/// Runs the sessions one after another on the calling thread, in spec
/// order.
pub fn run_sessions(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
) -> Result<Vec<SessionResult>> {
    specs.iter().map(|spec| run_one_session(engine, oracle, spec)).collect()
}

/// Runs every session concurrently, one OS thread per spec, against the
/// shared engine. Results come back in spec order regardless of thread
/// interleaving.
pub fn run_sessions_concurrently(
    engine: &EngineCore,
    oracle: &Oracle,
    specs: &[SessionSpec],
) -> Result<Vec<SessionResult>> {
    thread::scope(|scope| {
        let handles: Vec<_> = specs
            .iter()
            .map(|spec| scope.spawn(move || run_one_session(engine, oracle, spec)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().map_err(|_| UeiError::invalid_state("session thread panicked"))?)
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_sdss_like, SynthConfig};
    use crate::workload::generate_target_region_fraction;
    use std::sync::Arc;
    use uei_index::config::UeiConfig;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::Schema;

    #[test]
    fn concurrent_sessions_complete_and_share_one_cache() {
        let rows = generate_sdss_like(&SynthConfig { rows: 2500, ..Default::default() });
        let mut rng = Rng::new(13);
        let target =
            generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
        let oracle = Oracle::new(target);

        let dir = uei_storage::TempDir::new("multi-smoke");
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.path(),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker,
        )
        .unwrap();
        let engine = EngineCore::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, prefetch: false, ..UeiConfig::default() },
        )
        .unwrap();

        let specs: Vec<SessionSpec> = (0..4)
            .map(|i| SessionSpec {
                session: SessionConfig {
                    max_labels: 8,
                    bootstrap_size: 100,
                    eval_sample: 100,
                    seed: 100 + i,
                    ..SessionConfig::default()
                },
                sample_seed: 200 + i,
                gamma: 150,
            })
            .collect();

        let results = run_sessions_concurrently(&engine, &oracle, &specs).unwrap();
        assert_eq!(results.len(), 4);
        assert_eq!(engine.sessions_opened(), 4);
        for r in &results {
            assert_eq!(r.backend, "uei");
            assert!(r.labels_used >= 2);
        }
        // All four sessions fed the one engine-wide cache.
        let agg = engine.cache_stats();
        assert!(agg.hits + agg.misses > 0, "shared cache saw traffic");
    }
}
