//! # uei-explore
//!
//! The interactive-data-exploration system of the reproduction: a
//! REQUEST-like exploration loop (the paper's evaluation vehicle, §4.1)
//! that can run over either storage scheme, plus everything the evaluation
//! needs around it:
//!
//! - [`synth`] — an SDSS-like synthetic dataset generator (the paper uses
//!   40 GB of Sloan Digital Sky Survey `PhotoObjAll`; see DESIGN.md for
//!   the substitution argument);
//! - [`workload`] — target-interest-region generation calibrated to the
//!   paper's small/medium/large cardinalities (0.1 % / 0.4 % / 0.8 %);
//! - [`oracle`] — the simulated user: an oracle range query defines the
//!   ground-truth relevant set and labels examples by the maximum relative
//!   distance of Eq. 4;
//! - [`backend`] — the [`backend::ExplorationBackend`] trait with its two
//!   implementations: [`backend::UeiBackend`] (Algorithm 2) and
//!   [`backend::DbmsBackend`] (Algorithm 1 over the MySQL-like row store);
//! - [`session`] — the iteration loop, response-time measurement, and
//!   per-iteration F-measure traces, split into a thin
//!   [`session::ExplorationSession`] driver over a
//!   [`session::SessionState`];
//! - [`multi`] — concurrent multi-session runs over one shared
//!   `uei_index::engine::EngineCore`;
//! - [`report`] — multi-run averaging and serializable results.

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod backend;
pub mod multi;
pub mod oracle;
pub mod report;
pub mod session;
pub mod synth;
pub mod workload;

pub use backend::{DbmsBackend, ExplorationBackend, UeiBackend};
pub use multi::{
    recover_one_session, run_one_session, run_sessions, run_sessions_concurrently,
    run_sessions_supervised, run_sessions_supervised_with, summarize_outcomes, SessionOutcome,
    SessionSpec,
};
pub use oracle::Oracle;
pub use report::{average_traces, AveragedIteration, RunSummary};
pub use session::{ExplorationSession, IterationTrace, SessionConfig, SessionResult, SessionState};
pub use synth::{generate_sdss_like, SynthConfig};
pub use workload::{
    generate_target_region, generate_target_region_fraction, RegionSize, TargetRegion,
};
