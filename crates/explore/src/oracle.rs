//! The simulated user (paper §4.1, "User Simulation").
//!
//! "For each target interest region, we simulate the user by executing the
//! corresponding range query to collect the exact target set of relevant
//! tuples. We rely on this 'oracle' set to assign confidence score p to
//! the tuples we extract in each iteration based on their location in the
//! data space against the target region."
//!
//! The membership measure is the maximum relative distance of Eq. 4:
//! `d = max_i |x_i − c_i| / w_i` — a point is relevant exactly when
//! `d ≤ 1`, and `1 − min(d, something)` grades confidence near the border.

use std::collections::HashSet;

use uei_types::{DataPoint, Label, Region, Result};

use crate::workload::TargetRegion;

/// The simulated user.
#[derive(Debug, Clone)]
pub struct Oracle {
    target: TargetRegion,
    relevant: HashSet<u64>,
}

impl Oracle {
    /// Builds the oracle from a generated target region (whose ground
    /// truth came from the oracle range query at workload-generation time).
    pub fn new(target: TargetRegion) -> Oracle {
        let relevant = target.relevant_ids.iter().copied().collect();
        Oracle { target, relevant }
    }

    /// The target region.
    pub fn region(&self) -> &Region {
        &self.target.region
    }

    /// The target region descriptor.
    pub fn target(&self) -> &TargetRegion {
        &self.target
    }

    /// Ground-truth relevant row ids, ascending.
    pub fn relevant_ids(&self) -> &[u64] {
        &self.target.relevant_ids
    }

    /// Number of relevant tuples.
    pub fn num_relevant(&self) -> usize {
        self.target.relevant_ids.len()
    }

    /// Eq. 4: the maximum relative distance of `point` from the region
    /// center (`<= 1` inside the region).
    pub fn relative_distance(&self, point: &[f64]) -> Result<f64> {
        self.target.region.max_relative_distance(point)
    }

    /// Labels one example the way the simulated user would.
    pub fn label(&self, point: &DataPoint) -> Result<Label> {
        Ok(Label::from_bool(self.relative_distance(&point.values)? <= 1.0))
    }

    /// Confidence that the point is relevant, graded by Eq. 4's distance:
    /// 1 at the center, 0.5 at the region border, decaying outside. Useful
    /// for soft-label extensions; the binary experiments use [`Self::label`].
    pub fn confidence(&self, point: &[f64]) -> Result<f64> {
        let d = self.relative_distance(point)?;
        Ok(1.0 / (1.0 + d * d))
    }

    /// Ground-truth membership by row id (exact oracle set).
    pub fn is_relevant_id(&self, id: u64) -> bool {
        self.relevant.contains(&id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{generate_sdss_like, SynthConfig};
    use crate::workload::{generate_target_region, RegionSize};
    use uei_types::{Rng, Schema};

    fn oracle_fixture() -> (Oracle, Vec<DataPoint>) {
        let rows = generate_sdss_like(&SynthConfig { rows: 5_000, ..Default::default() });
        let schema = Schema::sdss();
        let mut rng = Rng::new(21);
        let target = generate_target_region(&rows, &schema, RegionSize::Large, &mut rng).unwrap();
        (Oracle::new(target), rows)
    }

    #[test]
    fn labels_agree_with_region_membership() {
        let (oracle, rows) = oracle_fixture();
        for r in &rows {
            let inside = oracle.region().contains(&r.values).unwrap();
            let label = oracle.label(r).unwrap();
            assert_eq!(label.is_positive(), inside, "row {}", r.id);
            assert_eq!(oracle.is_relevant_id(r.id.as_u64()), inside);
        }
    }

    #[test]
    fn eq4_distance_is_one_on_the_border() {
        let (oracle, _) = oracle_fixture();
        let t = oracle.target();
        // A point exactly on the border in dimension 0.
        let mut edge = t.center.clone();
        edge[0] += t.half_widths[0];
        let d = oracle.relative_distance(&edge).unwrap();
        assert!((d - 1.0).abs() < 1e-9, "border distance {d}");
        // Just inside the border (exact border can round to 1 + ε in f64).
        let mut inside = t.center.clone();
        inside[0] += t.half_widths[0] * (1.0 - 1e-9);
        assert!(oracle.label(&DataPoint::new(0u64, inside)).unwrap().is_positive());
    }

    #[test]
    fn center_has_distance_zero_and_max_confidence() {
        let (oracle, _) = oracle_fixture();
        let c = oracle.target().center.clone();
        assert_eq!(oracle.relative_distance(&c).unwrap(), 0.0);
        assert_eq!(oracle.confidence(&c).unwrap(), 1.0);
    }

    #[test]
    fn confidence_decays_monotonically() {
        let (oracle, _) = oracle_fixture();
        let t = oracle.target().clone();
        let mut last = f64::INFINITY;
        for k in [0.0, 0.5, 1.0, 1.5, 3.0] {
            let mut p = t.center.clone();
            p[0] += k * t.half_widths[0];
            let conf = oracle.confidence(&p).unwrap();
            assert!(conf <= last, "confidence must decay with distance");
            last = conf;
        }
        // Border confidence is exactly 0.5.
        let mut border = t.center.clone();
        border[0] += t.half_widths[0];
        assert!((oracle.confidence(&border).unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn relevant_count_matches_ids() {
        let (oracle, rows) = oracle_fixture();
        let brute = rows.iter().filter(|r| oracle.region().contains(&r.values).unwrap()).count();
        assert_eq!(oracle.num_relevant(), brute);
        assert_eq!(oracle.relevant_ids().len(), brute);
    }
}
