//! Multi-run aggregation of session results.
//!
//! The paper reports every figure as the average of 10 complete runs
//! (Table 1). [`average_traces`] aligns the per-iteration traces of
//! repeated sessions by label count and averages F-measure and response
//! time across runs.

use serde::{Deserialize, Serialize};
use uei_obs::PhaseMs;
use uei_types::stats::Welford;

use crate::session::{IterationTrace, SessionResult};

/// One averaged point of a figure: all runs' measurements at a given
/// number of labeled examples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AveragedIteration {
    /// Number of labeled examples the model was trained on.
    pub labels: usize,
    /// Mean F-measure across runs (of runs that evaluated at this point).
    pub f_measure_mean: f64,
    /// Standard deviation of the F-measure.
    pub f_measure_std: f64,
    /// Mean modeled response time (ms).
    pub response_virtual_ms_mean: f64,
    /// Mean wall response time (ms).
    pub response_wall_ms_mean: f64,
    /// Mean bytes read per iteration.
    pub bytes_read_mean: f64,
    /// Chunk-cache hit ratio at this point, pooled over the contributing
    /// runs' counters (hits / (hits + misses + bypasses); 0 with no
    /// lookups).
    #[serde(default)]
    pub cache_hit_ratio: f64,
    /// Mean chunk-cache evictions per iteration.
    #[serde(default)]
    pub cache_evictions_mean: f64,
    /// Mean background (prefetcher) bytes read per iteration.
    #[serde(default)]
    pub prefetch_bytes_read_mean: f64,
    /// Number of runs contributing to this point.
    pub runs: usize,
}

/// A whole experiment series (one backend, one region size).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunSummary {
    /// Backend name.
    pub backend: String,
    /// Number of runs aggregated.
    pub runs: usize,
    /// The averaged per-label-count series.
    pub series: Vec<AveragedIteration>,
    /// Mean of the runs' exact final F-measures.
    pub final_f_measure_mean: f64,
    /// Mean modeled response time over all iterations of all runs (ms).
    pub overall_response_virtual_ms: f64,
    /// 95th-percentile modeled response time (ms).
    pub p95_response_virtual_ms: f64,
    /// Chunk-cache hit ratio pooled over every iteration of every run.
    #[serde(default)]
    pub cache_hit_ratio: f64,
    /// Mean chunk-cache evictions per run.
    #[serde(default)]
    pub cache_evictions_per_run: f64,
    /// Mean background (prefetcher) bytes read per run.
    #[serde(default)]
    pub prefetch_bytes_per_run: f64,
    /// Mean transient-storage-error retries per run (fault tolerance).
    #[serde(default)]
    pub retries_per_run: f64,
    /// Mean candidate ranks skipped past storage-faulted cells per run.
    #[serde(default)]
    pub fallback_cells_per_run: f64,
    /// Mean iterations per run served from the resident pool because every
    /// candidate region failed (the last degradation rung).
    #[serde(default)]
    pub degraded_iterations_per_run: f64,
    /// Mean index points rescored per run (the work incremental rescoring
    /// actually performed).
    #[serde(default)]
    pub points_rescored_per_run: f64,
    /// Mean index points served from the score cache per run (the work
    /// incremental rescoring skipped).
    #[serde(default)]
    pub points_cached_per_run: f64,
    /// Mean index-plane shards touched per run (every shard on a full
    /// rescoring pass, only the dirty shards under incremental rescoring).
    #[serde(default)]
    pub shards_touched_per_run: f64,
    /// Sessions that died (panic or error) and could not be recovered from
    /// a journal; they contribute no traces. Only
    /// [`crate::multi::summarize_outcomes`] can report a non-zero count —
    /// [`average_traces`] never sees aborted runs.
    #[serde(default)]
    pub aborted_runs: usize,
    /// Sessions resumed from their journal after a crash and run to
    /// completion (their traces carry [`IterationTrace::recovered`]
    /// iterations).
    ///
    /// [`IterationTrace::recovered`]: crate::session::IterationTrace::recovered
    #[serde(default)]
    pub recovered_runs: usize,
    /// 95th-percentile wall-clock response time (ms), pooled over every
    /// iteration *measured in-process* — traces restored verbatim by a
    /// journal replay ([`IterationTrace::wall_ms_replayed`]) are excluded,
    /// since their wall times belong to the crashed process. Zero when
    /// every trace was replayed.
    ///
    /// [`IterationTrace::wall_ms_replayed`]: crate::session::IterationTrace::wall_ms_replayed
    #[serde(default)]
    pub p95_response_wall_ms: f64,
    /// Traces excluded from wall-time percentile pooling because they were
    /// restored from a journal rather than measured.
    #[serde(default)]
    pub replayed_traces: usize,
    /// Telemetry phase-timing totals summed over every iteration of every
    /// run (empty when telemetry was disabled). Observational only.
    #[serde(default)]
    pub phase_ms: Vec<PhaseMs>,
}

/// Sums per-iteration phase breakdowns into one total per phase,
/// preserving first-seen phase order.
fn pool_phase_ms<'a>(traces: impl Iterator<Item = &'a IterationTrace>) -> Vec<PhaseMs> {
    let mut out: Vec<PhaseMs> = Vec::new();
    for pm in traces.flat_map(|t| t.phase_ms.iter()) {
        match out.iter_mut().find(|o| o.phase == pm.phase) {
            Some(o) => {
                o.wall_ms += pm.wall_ms;
                o.virtual_ms += pm.virtual_ms;
                o.count += pm.count;
            }
            None => out.push(pm.clone()),
        }
    }
    out
}

/// Averages repeated sessions into one series.
///
/// Traces are aligned on `labels` (the number of labeled examples at
/// training time); iterations that did not evaluate F-measure contribute
/// only to the timing averages.
pub fn average_traces(results: &[SessionResult]) -> RunSummary {
    assert!(!results.is_empty(), "average_traces needs at least one run");
    let backend = results[0].backend.clone();
    let max_labels =
        results.iter().flat_map(|r| r.traces.iter().map(|t| t.labels)).max().unwrap_or(0);
    let min_labels =
        results.iter().flat_map(|r| r.traces.iter().map(|t| t.labels)).min().unwrap_or(0);

    let mut series = Vec::new();
    for labels in min_labels..=max_labels {
        let mut f = Welford::new();
        let mut virt = Welford::new();
        let mut wall = Welford::new();
        let mut bytes = Welford::new();
        let mut evictions = Welford::new();
        let mut prefetch_bytes = Welford::new();
        let (mut hits, mut lookups) = (0u64, 0u64);
        let mut runs = 0usize;
        for r in results {
            if let Some(t) = r.traces.iter().find(|t| t.labels == labels) {
                runs += 1;
                virt.push(t.response_virtual_ms);
                wall.push(t.response_wall_ms);
                bytes.push(t.bytes_read as f64);
                evictions.push(t.counters.cache_evictions as f64);
                prefetch_bytes.push(t.counters.prefetch_bytes_read as f64);
                hits += t.counters.cache_hits;
                lookups +=
                    t.counters.cache_hits + t.counters.cache_misses + t.counters.cache_bypasses;
                if let Some(fm) = t.f_measure {
                    f.push(fm);
                }
            }
        }
        if runs == 0 {
            continue;
        }
        series.push(AveragedIteration {
            labels,
            f_measure_mean: f.mean(),
            f_measure_std: f.std_dev(),
            response_virtual_ms_mean: virt.mean(),
            response_wall_ms_mean: wall.mean(),
            bytes_read_mean: bytes.mean(),
            cache_hit_ratio: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
            cache_evictions_mean: evictions.mean(),
            prefetch_bytes_read_mean: prefetch_bytes.mean(),
            runs,
        });
    }

    let mut all_virtual: Vec<f64> =
        results.iter().flat_map(|r| r.traces.iter().map(|t| t.response_virtual_ms)).collect();
    all_virtual.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let overall = if all_virtual.is_empty() {
        0.0
    } else {
        all_virtual.iter().sum::<f64>() / all_virtual.len() as f64
    };
    let p95 = if all_virtual.is_empty() {
        0.0
    } else {
        uei_types::stats::percentile_sorted(&all_virtual, 95.0)
    };

    let (mut hits, mut lookups, mut evictions, mut prefetch_bytes) = (0u64, 0u64, 0u64, 0u64);
    let (mut retries, mut fallback_cells, mut degraded) = (0u64, 0u64, 0u64);
    let (mut points_rescored, mut points_cached) = (0u64, 0u64);
    let mut shards_touched = 0u64;
    for t in results.iter().flat_map(|r| r.traces.iter()) {
        hits += t.counters.cache_hits;
        lookups += t.counters.cache_hits + t.counters.cache_misses + t.counters.cache_bypasses;
        evictions += t.counters.cache_evictions;
        prefetch_bytes += t.counters.prefetch_bytes_read;
        retries += t.counters.retries;
        fallback_cells += t.counters.fallback_cells;
        degraded += u64::from(t.counters.degraded);
        points_rescored += t.counters.points_rescored;
        points_cached += t.counters.points_cached;
        shards_touched += t.counters.shards_touched;
    }

    // Wall-time percentiles pool only iterations measured in this process:
    // replayed traces carry the crashed run's wall clock, which would skew
    // a percentile that claims to describe live responsiveness.
    let mut measured_wall: Vec<f64> = results
        .iter()
        .flat_map(|r| r.traces.iter())
        .filter(|t| !t.wall_ms_replayed)
        .map(|t| t.response_wall_ms)
        .collect();
    measured_wall.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let p95_wall = if measured_wall.is_empty() {
        0.0
    } else {
        uei_types::stats::percentile_sorted(&measured_wall, 95.0)
    };
    let replayed_traces =
        results.iter().flat_map(|r| r.traces.iter()).filter(|t| t.wall_ms_replayed).count();

    RunSummary {
        backend,
        runs: results.len(),
        final_f_measure_mean: results.iter().map(|r| r.final_f_measure).sum::<f64>()
            / results.len() as f64,
        series,
        overall_response_virtual_ms: overall,
        p95_response_virtual_ms: p95,
        cache_hit_ratio: if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 },
        cache_evictions_per_run: evictions as f64 / results.len() as f64,
        prefetch_bytes_per_run: prefetch_bytes as f64 / results.len() as f64,
        retries_per_run: retries as f64 / results.len() as f64,
        fallback_cells_per_run: fallback_cells as f64 / results.len() as f64,
        degraded_iterations_per_run: degraded as f64 / results.len() as f64,
        points_rescored_per_run: points_rescored as f64 / results.len() as f64,
        points_cached_per_run: points_cached as f64 / results.len() as f64,
        shards_touched_per_run: shards_touched as f64 / results.len() as f64,
        aborted_runs: 0,
        recovered_runs: results.iter().filter(|r| r.traces.iter().any(|t| t.recovered)).count(),
        p95_response_wall_ms: p95_wall,
        replayed_traces,
        phase_ms: pool_phase_ms(results.iter().flat_map(|r| r.traces.iter())),
    }
}

/// The number of labels needed to first reach an F-measure threshold
/// (compares convergence speed between schemes, Figures 3–5).
pub fn labels_to_reach(summary: &RunSummary, f_threshold: f64) -> Option<usize> {
    summary.series.iter().find(|p| p.f_measure_mean >= f_threshold).map(|p| p.labels)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::IterationTrace;
    use uei_obs::ObsCounters;

    fn trace(labels: usize, f: Option<f64>, virt: f64) -> IterationTrace {
        IterationTrace {
            iteration: labels,
            labels,
            f_measure: f,
            response_virtual_ms: virt,
            response_wall_ms: virt * 2.0,
            bytes_read: 1000,
            seeks: 1,
            label_positive: true,
            region_rows: None,
            prefetched: false,
            counters: ObsCounters::default(),
            recovered: false,
            examined: None,
            wall_ms_replayed: false,
            phase_ms: Vec::new(),
        }
    }

    fn result(traces: Vec<IterationTrace>, final_f: f64) -> SessionResult {
        SessionResult {
            backend: "uei".into(),
            total_virtual_secs: 0.0,
            total_wall_secs: 0.0,
            labels_used: traces.len(),
            final_f_measure: final_f,
            traces,
        }
    }

    #[test]
    fn averages_across_runs() {
        let r1 = result(vec![trace(2, Some(0.2), 10.0), trace(3, Some(0.4), 20.0)], 0.5);
        let r2 = result(vec![trace(2, Some(0.4), 30.0), trace(3, Some(0.6), 40.0)], 0.7);
        let summary = average_traces(&[r1, r2]);
        assert_eq!(summary.runs, 2);
        assert_eq!(summary.series.len(), 2);
        let p2 = &summary.series[0];
        assert_eq!(p2.labels, 2);
        assert!((p2.f_measure_mean - 0.3).abs() < 1e-12);
        assert!((p2.response_virtual_ms_mean - 20.0).abs() < 1e-12);
        assert_eq!(p2.runs, 2);
        assert!((summary.final_f_measure_mean - 0.6).abs() < 1e-12);
    }

    #[test]
    fn handles_missing_evaluations() {
        let r = result(vec![trace(2, None, 10.0), trace(3, Some(0.5), 20.0)], 0.5);
        let summary = average_traces(&[r]);
        assert_eq!(summary.series[0].f_measure_mean, 0.0, "no eval contributes 0 runs");
        assert!((summary.series[1].f_measure_mean - 0.5).abs() < 1e-12);
        // Timing still averaged for the unevaluated iteration.
        assert!((summary.series[0].response_virtual_ms_mean - 10.0).abs() < 1e-12);
    }

    #[test]
    fn ragged_runs_align_on_labels() {
        let r1 = result(vec![trace(2, Some(0.1), 1.0)], 0.2);
        let r2 = result(vec![trace(2, Some(0.3), 3.0), trace(3, Some(0.5), 5.0)], 0.6);
        let summary = average_traces(&[r1, r2]);
        assert_eq!(summary.series.len(), 2);
        assert_eq!(summary.series[0].runs, 2);
        assert_eq!(summary.series[1].runs, 1);
    }

    #[test]
    fn labels_to_reach_threshold() {
        let r = result(
            vec![trace(2, Some(0.3), 1.0), trace(3, Some(0.6), 1.0), trace(4, Some(0.9), 1.0)],
            0.9,
        );
        let summary = average_traces(&[r]);
        assert_eq!(labels_to_reach(&summary, 0.5), Some(3));
        assert_eq!(labels_to_reach(&summary, 0.95), None);
    }

    #[test]
    fn cache_metrics_are_aggregated() {
        let mut a = trace(2, None, 1.0);
        a.counters.cache_hits = 6;
        a.counters.cache_misses = 2;
        a.counters.cache_bypasses = 0;
        a.counters.cache_evictions = 1;
        a.counters.prefetch_bytes_read = 4096;
        let mut b = trace(2, None, 1.0);
        b.counters.cache_hits = 2;
        b.counters.cache_misses = 5;
        b.counters.cache_bypasses = 1;
        b.counters.cache_evictions = 3;
        b.counters.prefetch_bytes_read = 0;
        let summary = average_traces(&[result(vec![a], 0.0), result(vec![b], 0.0)]);

        // Pooled ratio: (6 + 2) hits over (8 + 8) lookups.
        let p = &summary.series[0];
        assert!((p.cache_hit_ratio - 0.5).abs() < 1e-12);
        assert!((p.cache_evictions_mean - 2.0).abs() < 1e-12);
        assert!((p.prefetch_bytes_read_mean - 2048.0).abs() < 1e-12);
        assert!((summary.cache_hit_ratio - 0.5).abs() < 1e-12);
        assert!((summary.cache_evictions_per_run - 2.0).abs() < 1e-12);
        assert!((summary.prefetch_bytes_per_run - 2048.0).abs() < 1e-12);
    }

    #[test]
    fn traces_without_cache_fields_deserialize_with_defaults() {
        // Pre-cache-metrics trace JSON (e.g. archived experiment output)
        // must still load; the new counters default to zero.
        let old = r#"{
            "iteration": 1, "labels": 2, "f_measure": 0.5,
            "response_virtual_ms": 1.0, "response_wall_ms": 2.0,
            "bytes_read": 100, "seeks": 1, "label_positive": true,
            "region_rows": null, "prefetched": false, "examined": null
        }"#;
        let t: IterationTrace = serde_json::from_str(old).unwrap();
        assert_eq!(t.counters.cache_hits, 0);
        assert_eq!(t.counters.cache_evictions, 0);
        assert_eq!(t.counters.prefetch_bytes_read, 0);
        assert_eq!(t.counters.retries, 0);
        assert_eq!(t.counters.fallback_cells, 0);
        assert!(!t.counters.degraded);
        assert_eq!(t.counters.points_rescored, 0);
        assert_eq!(t.counters.points_cached, 0);
        assert_eq!(t.counters.shards_touched, 0);
        assert!(!t.wall_ms_replayed);
        assert!(t.phase_ms.is_empty());
    }

    #[test]
    fn pre_shard_summary_json_deserializes_with_defaults() {
        // A RunSummary archived before the index plane was sharded: every
        // post-seed counter (cache, fault, rescore, shard) is absent and
        // must come back as its default.
        let old = r#"{
            "backend": "uei", "runs": 2,
            "series": [{
                "labels": 2, "f_measure_mean": 0.5, "f_measure_std": 0.1,
                "response_virtual_ms_mean": 1.0, "response_wall_ms_mean": 2.0,
                "bytes_read_mean": 100.0, "runs": 2
            }],
            "final_f_measure_mean": 0.5,
            "overall_response_virtual_ms": 1.0,
            "p95_response_virtual_ms": 1.5
        }"#;
        let s: RunSummary = serde_json::from_str(old).unwrap();
        assert_eq!(s.runs, 2);
        assert_eq!(s.series.len(), 1);
        assert_eq!(s.series[0].cache_hit_ratio, 0.0);
        assert_eq!(s.cache_hit_ratio, 0.0);
        assert_eq!(s.points_rescored_per_run, 0.0);
        assert_eq!(s.shards_touched_per_run, 0.0);
        assert_eq!(s.aborted_runs, 0);
        assert_eq!(s.recovered_runs, 0);
    }

    #[test]
    fn shard_counters_are_aggregated_per_run() {
        let mut a = trace(2, None, 1.0);
        a.counters.shards_touched = 8;
        let mut b = trace(2, None, 1.0);
        b.counters.shards_touched = 1;
        let summary = average_traces(&[result(vec![a], 0.0), result(vec![b], 0.0)]);
        assert!((summary.shards_touched_per_run - 4.5).abs() < 1e-12);
    }

    #[test]
    fn rescore_counters_are_aggregated_per_run() {
        let mut a = trace(2, None, 1.0);
        a.counters.points_rescored = 100;
        a.counters.points_cached = 3025;
        let mut b = trace(2, None, 1.0);
        b.counters.points_rescored = 3125;
        b.counters.points_cached = 0;
        let summary = average_traces(&[result(vec![a], 0.0), result(vec![b], 0.0)]);
        assert!((summary.points_rescored_per_run - 1612.5).abs() < 1e-12);
        assert!((summary.points_cached_per_run - 1512.5).abs() < 1e-12);
    }

    #[test]
    fn fault_counters_are_aggregated_per_run() {
        let mut a = trace(2, None, 1.0);
        a.counters.retries = 3;
        a.counters.fallback_cells = 2;
        a.counters.degraded = true;
        let mut b = trace(2, None, 1.0);
        b.counters.retries = 1;
        let summary = average_traces(&[result(vec![a], 0.0), result(vec![b], 0.0)]);
        assert!((summary.retries_per_run - 2.0).abs() < 1e-12);
        assert!((summary.fallback_cells_per_run - 1.0).abs() < 1e-12);
        assert!((summary.degraded_iterations_per_run - 0.5).abs() < 1e-12);
    }

    #[test]
    fn replayed_traces_excluded_from_wall_percentiles() {
        let mut traces: Vec<IterationTrace> = (0..10).map(|i| trace(i + 2, None, 1.0)).collect();
        // Measured traces all have wall = 2.0; give replayed ones absurd
        // wall times to prove they never reach the pool.
        for t in traces.iter_mut().take(5) {
            t.wall_ms_replayed = true;
            t.response_wall_ms = 10_000.0;
        }
        let summary = average_traces(&[result(traces, 0.0)]);
        assert_eq!(summary.replayed_traces, 5);
        assert!((summary.p95_response_wall_ms - 2.0).abs() < 1e-12);
    }

    #[test]
    fn phase_breakdowns_pool_across_runs() {
        let mut a = trace(2, None, 1.0);
        a.phase_ms =
            vec![PhaseMs { phase: "rescore".into(), wall_ms: 1.0, virtual_ms: 2.0, count: 1 }];
        let mut b = trace(2, None, 1.0);
        b.phase_ms = vec![
            PhaseMs { phase: "rescore".into(), wall_ms: 3.0, virtual_ms: 4.0, count: 2 },
            PhaseMs { phase: "eval".into(), wall_ms: 0.5, virtual_ms: 0.0, count: 1 },
        ];
        let summary = average_traces(&[result(vec![a], 0.0), result(vec![b], 0.0)]);
        assert_eq!(summary.phase_ms.len(), 2);
        let rescore = summary.phase_ms.iter().find(|p| p.phase == "rescore").unwrap();
        assert!((rescore.wall_ms - 4.0).abs() < 1e-12);
        assert!((rescore.virtual_ms - 6.0).abs() < 1e-12);
        assert_eq!(rescore.count, 3);
        assert_eq!(summary.phase_ms.iter().find(|p| p.phase == "eval").unwrap().count, 1);
    }

    #[test]
    fn percentile_reporting() {
        let traces: Vec<IterationTrace> = (0..100).map(|i| trace(i + 2, None, i as f64)).collect();
        let summary = average_traces(&[result(traces, 0.0)]);
        assert!(summary.p95_response_virtual_ms >= 90.0);
        assert!((summary.overall_response_virtual_ms - 49.5).abs() < 1e-9);
    }
}
