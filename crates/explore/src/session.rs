//! The exploration session: the shared iteration loop and its measurement.
//!
//! Implements the human-in-the-loop workflow of Algorithms 1/2 against any
//! [`ExplorationBackend`], with the paper's measurement methodology:
//!
//! - the **response time** of an iteration is the time between two
//!   subsequent examples — model (re)training plus example selection (for
//!   UEI that includes the region load; for the DBMS scheme the exhaustive
//!   scan). Virtual (modeled-disk) time and wall-clock are both recorded;
//! - **accuracy** is the F-measure of the positive-classified set against
//!   the oracle set (Table 1). Per-iteration F-measure is estimated on a
//!   fixed uniform evaluation sample drawn once at session start (scoring
//!   all n rows every iteration would itself be an exhaustive scan); the
//!   final F-measure is exact, via full result retrieval (line 26).
//!
//! ## Bootstrap
//!
//! The initial model needs "at least one positive example and one negative
//! example" (§3.2). With a 0.1 % target region, uniform draws rarely hit a
//! positive; REQUEST solves this with its data-reduction stage. We
//! substitute: if the bootstrap pool contains no positive, the simulated
//! user supplies one relevant tuple (fetched by id through the backend,
//! charged to the same I/O model). DESIGN.md documents this substitution.
//!
//! ## Durability (DESIGN.md §13)
//!
//! A session may attach a write-ahead journal
//! ([`ExplorationSession::attach_journal`]): every labeled example is
//! appended as a CRC-framed record the moment it enters `L`, and a
//! `SessionSnapshot`-shaped snapshot lands every
//! `JournalConfig::snapshot_every` iterations. After a crash,
//! [`ExplorationSession::recover`] rebuilds a **bit-identical** session by
//! *deterministic replay*: the whole stack is seed-deterministic, so
//! recovery re-executes bootstrap and every journaled selection against a
//! fresh backend, verifying each re-derived choice against the journal,
//! while the recorded traces are restored verbatim (the expensive
//! per-iteration F-measure estimates are *not* recomputed — that is what
//! makes recovery cheaper than the original run). Journal appends happen
//! strictly outside the measured response-time window of each iteration,
//! so an uninterrupted run's traces are unchanged by journaling except for
//! the modeled write charge on the cumulative ledger.

use std::path::Path;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use uei_learn::dataset::LabeledSet;
use uei_learn::metrics::set_f_measure;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, EstimatorKind, MinMaxScaler, ScaledClassifier};
use uei_obs::{FlightEventKind, ObsCounters, Phase, PhaseMs, PhaseSnapshot};
use uei_storage::journal::{JournalConfig, SessionJournal};
use uei_storage::DiskTracker;
use uei_types::{DataPoint, Label, Result, Rng, UeiError};

use crate::backend::ExplorationBackend;
use crate::oracle::Oracle;

/// Session parameters (defaults follow Table 1 where applicable).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The uncertainty estimator (Table 1: DWKNN).
    pub estimator: EstimatorKind,
    /// The uncertainty measure (least confidence, Eq. 1).
    pub measure: UncertaintyMeasure,
    /// Stop after this many labeled examples.
    pub max_labels: usize,
    /// Sample batch size `B` (Algorithm 1): the classifier is retrained
    /// after every `B` labels. `B = 1` (the default) retrains every
    /// iteration; larger batches trade convergence speed for less training
    /// work — "a tunable parameter of the active learning-based IDE
    /// balancing the effectiveness and efficiency" (paper §2.2).
    pub batch_size: usize,
    /// Size of the uniform pool used to bootstrap the initial examples.
    pub bootstrap_size: usize,
    /// Evaluation-sample size for per-iteration F-measure estimates.
    pub eval_sample: usize,
    /// Estimate F-measure every this many labels (1 = every iteration).
    pub eval_every: usize,
    /// Master seed for the session's randomness.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            estimator: EstimatorKind::Dwknn { k: 5 },
            measure: UncertaintyMeasure::LeastConfidence,
            max_labels: 100,
            batch_size: 1,
            bootstrap_size: 500,
            eval_sample: 2000,
            eval_every: 1,
            seed: 42,
        }
    }
}

/// Measurements of one exploration iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationTrace {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Labels the model was trained on at selection time.
    pub labels: usize,
    /// Estimated F-measure of that model on the evaluation sample
    /// (`None` on iterations where evaluation was skipped).
    pub f_measure: Option<f64>,
    /// Modeled (virtual-disk) response time, milliseconds.
    pub response_virtual_ms: f64,
    /// Wall-clock response time, milliseconds.
    pub response_wall_ms: f64,
    /// Bytes read from (modeled) disk during the iteration.
    pub bytes_read: u64,
    /// Seeks charged during the iteration.
    pub seeks: u64,
    /// The label the simulated user assigned.
    pub label_positive: bool,
    /// UEI: loaded region size (rows), if applicable.
    pub region_rows: Option<usize>,
    /// UEI: whether the region came from the prefetcher.
    pub prefetched: bool,
    /// The modeled observability counters of this iteration (chunk-cache
    /// traffic, prefetch bytes, the degradation ladder, rescoring work).
    /// Flattened: the JSON keys are exactly the historical loose fields
    /// (`cache_hits`, …, `points_cached`), so pre-consolidation traces
    /// parse unchanged and new traces serialize byte-identically.
    #[serde(flatten)]
    pub counters: ObsCounters,
    /// The iteration ran in a session resumed from its journal after a
    /// crash (replayed iterations keep the original `false`; only
    /// iterations executed *after* recovery are marked).
    #[serde(default)]
    pub recovered: bool,
    /// DBMS: tuples examined by the exhaustive scan, if applicable.
    pub examined: Option<u64>,
    /// The wall-clock fields of this trace were restored verbatim from a
    /// journal replay, not measured in this process — percentile pooling
    /// over wall times must exclude such traces. Modeled (virtual) fields
    /// are replay-exact and stay poolable.
    #[serde(default)]
    pub wall_ms_replayed: bool,
    /// Optional telemetry phase breakdown of the iteration (empty when
    /// telemetry is disabled). Purely observational — never part of the
    /// modeled counters above.
    #[serde(default)]
    pub phase_ms: Vec<PhaseMs>,
}

/// Everything about a session that must match between the run that wrote
/// a journal and the run that replays it. Recovery refuses a journal whose
/// fingerprint disagrees with the provided config — replaying under
/// different parameters would silently diverge instead.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct ConfigFingerprint {
    seed: u64,
    max_labels: usize,
    batch_size: usize,
    bootstrap_size: usize,
    eval_sample: usize,
    eval_every: usize,
    backend: String,
}

impl ConfigFingerprint {
    fn new(config: &SessionConfig, backend: &str) -> ConfigFingerprint {
        ConfigFingerprint {
            seed: config.seed,
            max_labels: config.max_labels,
            batch_size: config.batch_size,
            bootstrap_size: config.bootstrap_size,
            eval_sample: config.eval_sample,
            eval_every: config.eval_every,
            backend: backend.to_string(),
        }
    }
}

/// One labeled example as journaled: the row id plus the user's verdict.
/// The point's values are *not* stored — replay re-derives them from the
/// backend and the id equality check catches any divergence.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
struct JournaledLabel {
    id: u64,
    positive: bool,
}

fn journaled_labels(labeled: &LabeledSet) -> Vec<JournaledLabel> {
    labeled
        .entries()
        .iter()
        .map(|(p, l)| JournaledLabel { id: p.id.as_u64(), positive: l.is_positive() })
        .collect()
}

/// One record of the session journal (serialized as JSON inside a CRC
/// frame; see `uei_storage::journal` for the framing).
#[derive(Debug, Clone, Serialize, Deserialize)]
enum JournalRecord {
    /// First record of every journal: pins the config fingerprint.
    Start(ConfigFingerprint),
    /// The labeled set produced by bootstrap, in add order.
    Bootstrap(BootstrapRecord),
    /// One completed iteration: the label that was acknowledged and the
    /// trace it produced. `Ok` from this append *is* the acknowledgement —
    /// an acked label always survives recovery.
    Label(LabelRecord),
}

/// Payload of [`JournalRecord::Bootstrap`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BootstrapRecord {
    entries: Vec<JournaledLabel>,
}

/// Payload of [`JournalRecord::Label`].
#[derive(Debug, Clone, Serialize, Deserialize)]
struct LabelRecord {
    iteration: usize,
    entry: JournaledLabel,
    trace: IterationTrace,
}

/// The periodic snapshot payload: the full (append-only) label history
/// plus every trace recorded so far. Snapshot + journal suffix is always
/// sufficient to replay the session — older segments are garbage-collected
/// once a snapshot lands.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SessionSnapshot {
    fingerprint: ConfigFingerprint,
    /// Completed iterations at snapshot time (equals `traces.len()`).
    iteration: usize,
    /// How many leading `entries` came from bootstrap (no trace).
    bootstrap_labels: usize,
    /// Full labeled history in add order: bootstrap entries first, then
    /// one entry per completed iteration.
    entries: Vec<JournaledLabel>,
    /// Every trace recorded so far, restored verbatim on recovery.
    traces: Vec<IterationTrace>,
}

/// The outcome of a whole session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// Backend name ("uei" / "dbms").
    pub backend: String,
    /// Per-iteration traces.
    pub traces: Vec<IterationTrace>,
    /// Exact final F-measure via full result retrieval.
    pub final_f_measure: f64,
    /// Virtual seconds across all iterations (response times only).
    pub total_virtual_secs: f64,
    /// Wall seconds across all iterations.
    pub total_wall_secs: f64,
    /// Labels consumed (≤ `max_labels`; fewer if the pool drained).
    pub labels_used: usize,
}

/// The mutable state of one exploration session: everything that changes as
/// labels arrive — the labeled set `L`, the current model, the fixed
/// evaluation sample, and the per-iteration traces.
///
/// Splitting this out of the driver makes the concurrency story explicit:
/// an [`ExplorationSession`] is a thin loop over a `SessionState` plus a
/// backend, and N independent `SessionState`s (each with its own backend
/// opened via `EngineCore::open_session` and its own virtual disk clock)
/// can run on N threads against one shared engine. See DESIGN.md §10.
pub struct SessionState {
    scaler: MinMaxScaler,
    labeled: LabeledSet,
    model: Option<ScaledClassifier>,
    labels_at_last_train: usize,
    /// Fixed uniform evaluation sample drawn once at session start.
    eval_points: Vec<DataPoint>,
    eval_truth: Vec<bool>,
    traces: Vec<IterationTrace>,
    iteration: usize,
    /// How many leading entries of `labeled` came from bootstrap (needed
    /// by snapshots to separate bootstrap labels from iteration labels).
    bootstrap_labels: usize,
}

impl SessionState {
    /// The labeled set `L` accumulated so far.
    pub fn labeled(&self) -> &LabeledSet {
        &self.labeled
    }

    /// Per-iteration traces recorded so far.
    pub fn traces(&self) -> &[IterationTrace] {
        &self.traces
    }

    /// 1-based number of completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("labels", &self.labeled.len())
            .field("iteration", &self.iteration)
            .finish_non_exhaustive()
    }
}

/// Drives one exploration session of a backend against an oracle.
pub struct ExplorationSession<'a> {
    backend: &'a mut dyn ExplorationBackend,
    oracle: &'a Oracle,
    config: SessionConfig,
    tracker: DiskTracker,
    journal: Option<SessionJournal>,
    /// Set by [`ExplorationSession::recover`]: iterations executed from
    /// here on are stamped [`IterationTrace::recovered`].
    recovered: bool,
    /// Telemetry window mark: where the previous iteration's phase
    /// breakdown ended. Each trace's `phase_ms` covers mark→end-of-eval,
    /// so post-trace journal appends land in the *next* iteration's
    /// breakdown (the alternative — a second snapshot after the append —
    /// would put the append outside every window).
    phase_mark: Option<PhaseSnapshot>,
}

impl<'a> ExplorationSession<'a> {
    /// Creates a session. `tracker` must be the same I/O model the
    /// backend's storage charges, so response times cover its reads. For a
    /// backend opened from a shared engine, that is the *session* store's
    /// tracker (`backend.index().store().tracker()`), never the engine's.
    pub fn new(
        backend: &'a mut dyn ExplorationBackend,
        oracle: &'a Oracle,
        config: SessionConfig,
        tracker: DiskTracker,
    ) -> ExplorationSession<'a> {
        ExplorationSession {
            backend,
            oracle,
            config,
            tracker,
            journal: None,
            recovered: false,
            phase_mark: None,
        }
    }

    /// Attaches a fresh write-ahead journal rooted at `dir` (which must
    /// not already hold one — resuming an existing journal goes through
    /// [`ExplorationSession::recover`] instead). Call before
    /// [`ExplorationSession::start`]; every label acknowledged after this
    /// point is durably journaled. Journal writes are charged to the
    /// session's modeled disk but land outside each iteration's measured
    /// response-time window.
    pub fn attach_journal(&mut self, dir: &Path, journal_config: JournalConfig) -> Result<()> {
        self.journal = Some(SessionJournal::create(dir, journal_config, self.tracker.clone())?);
        Ok(())
    }

    /// Whether this session was resumed from a journal after a crash.
    pub fn is_recovered(&self) -> bool {
        self.recovered
    }

    /// Runs the session to completion.
    pub fn run(mut self) -> Result<SessionResult> {
        let state = self.start()?;
        self.run_from(state)
    }

    /// Runs an already-initialized (or recovered) session to completion.
    pub fn run_from(mut self, mut state: SessionState) -> Result<SessionResult> {
        while state.labeled.len() < self.config.max_labels {
            if !self.step(&mut state)? {
                break; // candidate pool exhausted
            }
        }
        self.finish(state)
    }

    /// Initializes the per-session state: validates the config, draws the
    /// fixed evaluation sample, and bootstraps the initial labeled set
    /// (one positive + one negative example).
    pub fn start(&mut self) -> Result<SessionState> {
        if self.config.batch_size == 0 {
            return Err(UeiError::invalid_config("batch_size must be >= 1"));
        }
        let mut rng = Rng::new(self.config.seed);
        let scaler = MinMaxScaler::from_schema(self.backend.schema());

        // Fixed evaluation sample with oracle ground truth.
        let eval_points = if self.config.eval_sample > 0 {
            self.backend.sample_rows(self.config.eval_sample, &mut rng)?
        } else {
            Vec::new()
        };
        let eval_truth: Vec<bool> =
            eval_points.iter().map(|p| self.oracle.is_relevant_id(p.id.as_u64())).collect();

        // Bootstrap the initial labeled set (one positive + one negative).
        let mut labeled = LabeledSet::new();
        self.journal_append(&JournalRecord::Start(ConfigFingerprint::new(
            &self.config,
            self.backend.name(),
        )))?;
        self.bootstrap(&mut labeled, &mut rng)?;
        self.journal_append(&JournalRecord::Bootstrap(BootstrapRecord {
            entries: journaled_labels(&labeled),
        }))?;

        Ok(SessionState {
            scaler,
            bootstrap_labels: labeled.len(),
            labeled,
            model: None,
            labels_at_last_train: 0,
            eval_points,
            eval_truth,
            traces: Vec::new(),
            iteration: 0,
        })
    }

    /// Runs one exploration iteration: retrain if due, select the next
    /// example, solicit its label, and record the trace. Returns `false`
    /// when the candidate pool is exhausted (no trace is recorded then).
    pub fn step(&mut self, state: &mut SessionState) -> Result<bool> {
        state.iteration += 1;
        let labels_at_train = state.labeled.len();
        // Inert (zero-alloc, no clock reads) when telemetry is disabled or
        // the backend has none; spans only *read* clocks, never charge
        // them, so modeled traces are bit-identical either way.
        let tel = self.backend.telemetry().cloned().unwrap_or_default();
        let phase_mark = self.phase_mark.take().unwrap_or_else(|| tel.phase_snapshot());

        let wall_start = Instant::now();
        let io_before = self.tracker.snapshot();

        // Retrain on L every `B` labels (Algorithm 1 lines 5–11 /
        // Algorithm 2 line 16). With B = 1 this is every iteration.
        if state.model.is_none()
            || state.labeled.len() - state.labels_at_last_train >= self.config.batch_size
        {
            let _span = tel.span(Phase::ModelRefit);
            state.model = Some(ScaledClassifier::train(
                self.config.estimator,
                state.scaler.clone(),
                &state.labeled.training_data(),
            )?);
            state.labels_at_last_train = state.labeled.len();
        }

        // Select the next example (lines 17–21 / line 6).
        let selected = {
            let model = state.model.as_ref().expect("trained above");
            self.backend.select_next(model, &state.labeled)?
        };
        let delta = self.tracker.delta(&io_before);
        let wall = wall_start.elapsed();

        let Some((point, mut info)) = selected else {
            return Ok(false); // candidate pool exhausted
        };
        info.recovered = self.recovered;

        // Solicit the user's label (line 22).
        let label = self.oracle.label(&point)?;
        state.labeled.add(point.clone(), label)?;
        self.backend.mark_labeled(point.id);

        // Accuracy estimate for the model that made this selection.
        let f_measure = if !state.eval_points.is_empty()
            && (state.iteration.is_multiple_of(self.config.eval_every)
                || state.labeled.len() >= self.config.max_labels)
        {
            let _span = tel.span(Phase::Eval);
            let model = state.model.as_ref().expect("trained above");
            Some(estimate_f(model, &state.eval_points, &state.eval_truth))
        } else {
            None
        };

        // The iteration's phase window closes here: the journal append
        // below is recorded under its own span but lands in the *next*
        // iteration's breakdown (see `phase_mark`).
        let phase_ms = tel.breakdown_since(&phase_mark);
        self.phase_mark = Some(tel.phase_snapshot());

        state.traces.push(IterationTrace {
            iteration: state.iteration,
            labels: labels_at_train,
            f_measure,
            response_virtual_ms: delta.virtual_elapsed.as_secs_f64() * 1e3,
            response_wall_ms: wall.as_secs_f64() * 1e3,
            bytes_read: delta.stats.bytes_read,
            seeks: delta.stats.seeks,
            label_positive: label.is_positive(),
            region_rows: info.region_rows,
            prefetched: info.prefetched,
            counters: info.counters,
            recovered: info.recovered,
            examined: info.examined,
            wall_ms_replayed: false,
            phase_ms,
        });
        // Journal the acknowledged label — outside the measured window
        // above, so journaling never perturbs the iteration's trace.
        let journal_seqs = self.journal.as_ref().map(|j| (j.segment_seq(), j.snapshot_seq()));
        {
            let _span = tel.span(Phase::JournalAppend);
            self.journal_iteration(state, &point, label)?;
        }
        if let (Some((seg_before, snap_before)), Some(journal)) =
            (journal_seqs, self.journal.as_ref())
        {
            let iteration = state.iteration as u64;
            let (seg, snap) = (journal.segment_seq(), journal.snapshot_seq());
            if seg > seg_before {
                tel.event(FlightEventKind::JournalRotation, iteration, || {
                    format!("journal segment rotated to seq {seg}")
                });
            }
            if snap > snap_before {
                tel.event(FlightEventKind::JournalSnapshot, iteration, || {
                    format!("session snapshot published at seq {snap}")
                });
            }
        }
        Ok(true)
    }

    /// Appends one record to the attached journal (no-op without one).
    fn journal_append(&mut self, record: &JournalRecord) -> Result<()> {
        let Some(journal) = &mut self.journal else { return Ok(()) };
        let payload = serde_json::to_vec(record).map_err(|e| {
            UeiError::invalid_state(format!("journal record serialization failed: {e}"))
        })?;
        journal.append(&payload)
    }

    /// Journals one completed iteration's label + trace, then snapshots
    /// the session every `JournalConfig::snapshot_every` iterations.
    fn journal_iteration(
        &mut self,
        state: &SessionState,
        point: &DataPoint,
        label: Label,
    ) -> Result<()> {
        let Some(snapshot_every) = self.journal.as_ref().map(|j| j.config().snapshot_every) else {
            return Ok(());
        };
        let trace = state.traces.last().expect("pushed above").clone();
        self.journal_append(&JournalRecord::Label(LabelRecord {
            iteration: state.iteration,
            entry: JournaledLabel { id: point.id.as_u64(), positive: label.is_positive() },
            trace,
        }))?;
        if state.iteration.is_multiple_of(snapshot_every as usize) {
            let snap = SessionSnapshot {
                fingerprint: ConfigFingerprint::new(&self.config, self.backend.name()),
                iteration: state.iteration,
                bootstrap_labels: state.bootstrap_labels,
                entries: journaled_labels(&state.labeled),
                traces: state.traces.clone(),
            };
            let payload = serde_json::to_vec(&snap).map_err(|e| {
                UeiError::invalid_state(format!("session snapshot serialization failed: {e}"))
            })?;
            self.journal.as_mut().expect("journal present").snapshot(&payload)?;
        }
        Ok(())
    }

    /// Resumes a crashed session from its journal by deterministic replay.
    ///
    /// `backend` must be constructed exactly as the original run's (same
    /// engine/store, same sampling seed): the whole stack is
    /// seed-deterministic, so recovery re-executes the bootstrap and every
    /// journaled selection against it, checking each re-derived row id and
    /// label against the journal ([`UeiError::Corrupt`] "journal
    /// divergence" on any mismatch) while restoring the recorded traces
    /// verbatim. Per-iteration F-measure estimation is skipped for
    /// replayed iterations — their traces already hold the original
    /// values — which is what makes recovery cheaper than re-running.
    ///
    /// The returned session has the journal re-attached (appending
    /// resumes where the journal left off) and stamps
    /// [`IterationTrace::recovered`] on every subsequent iteration; drive
    /// it with [`ExplorationSession::run_from`]. An empty or never-started
    /// journal recovers to a fresh start. Future traces are bit-identical
    /// to an uninterrupted run's (wall-clock fields aside).
    pub fn recover(
        backend: &'a mut dyn ExplorationBackend,
        oracle: &'a Oracle,
        config: SessionConfig,
        tracker: DiskTracker,
        dir: &Path,
        journal_config: JournalConfig,
    ) -> Result<(ExplorationSession<'a>, SessionState)> {
        let (contents, journal) = SessionJournal::recover(dir, journal_config, tracker.clone())?;
        let mut session = ExplorationSession {
            backend,
            oracle,
            config,
            tracker,
            journal: Some(journal),
            recovered: true,
            phase_mark: None,
        };
        let state = session.replay(contents)?;
        Ok((session, state))
    }

    /// Rebuilds the session state from recovered journal contents by
    /// re-executing the deterministic run against the fresh backend.
    fn replay(&mut self, contents: uei_storage::journal::JournalContents) -> Result<SessionState> {
        fn decode<T: serde::Deserialize>(what: &str, bytes: &[u8]) -> Result<T> {
            serde_json::from_slice(bytes)
                .map_err(|e| UeiError::corrupt(format!("journal {what} failed to decode: {e}")))
        }

        let fingerprint = ConfigFingerprint::new(&self.config, self.backend.name());
        let check_fingerprint = |found: &ConfigFingerprint| -> Result<()> {
            if *found != fingerprint {
                return Err(UeiError::invalid_state(format!(
                    "journal was written under a different session config \
                     (journal {found:?}, recovery {fingerprint:?})"
                )));
            }
            Ok(())
        };

        // Assemble the authoritative history: the snapshot (if any) plus
        // the record suffix. Records the snapshot already covers may
        // survive a crash between snapshot publish and segment GC; they
        // are deduplicated by iteration number.
        let mut started = false;
        let mut bootstrap: Option<Vec<JournaledLabel>> = None;
        let mut labels: Vec<(JournaledLabel, IterationTrace)> = Vec::new();
        if let Some(bytes) = &contents.snapshot {
            let snap: SessionSnapshot = decode("snapshot", bytes)?;
            check_fingerprint(&snap.fingerprint)?;
            let iterations = snap.entries.len().saturating_sub(snap.bootstrap_labels);
            if snap.traces.len() != iterations || snap.iteration != iterations {
                return Err(UeiError::corrupt(format!(
                    "journal snapshot inconsistent: {} entries ({} bootstrap), {} traces, \
                     iteration {}",
                    snap.entries.len(),
                    snap.bootstrap_labels,
                    snap.traces.len(),
                    snap.iteration
                )));
            }
            started = true;
            bootstrap = Some(snap.entries[..snap.bootstrap_labels].to_vec());
            labels =
                snap.entries[snap.bootstrap_labels..].iter().cloned().zip(snap.traces).collect();
        }
        for bytes in &contents.records {
            match decode::<JournalRecord>("record", bytes)? {
                JournalRecord::Start(found) => {
                    check_fingerprint(&found)?;
                    started = true;
                }
                JournalRecord::Bootstrap(BootstrapRecord { entries }) => match &bootstrap {
                    // A pre-snapshot segment surviving GC replays the same
                    // bootstrap; anything else is divergence.
                    Some(known) if *known == entries => {}
                    Some(_) => {
                        return Err(UeiError::corrupt(
                            "journal divergence: conflicting bootstrap records",
                        ))
                    }
                    None => bootstrap = Some(entries),
                },
                JournalRecord::Label(LabelRecord { iteration, entry, trace }) => {
                    if iteration <= labels.len() {
                        continue; // already covered by the snapshot
                    }
                    if iteration != labels.len() + 1 {
                        return Err(UeiError::corrupt(format!(
                            "journal gap: record for iteration {iteration} after {} \
                             recovered iterations",
                            labels.len()
                        )));
                    }
                    labels.push((entry, trace));
                }
            }
        }
        if !started && (bootstrap.is_some() || !labels.is_empty()) {
            return Err(UeiError::corrupt("journal has labels but no start record"));
        }
        if bootstrap.is_none() && !labels.is_empty() {
            return Err(UeiError::corrupt("journal has iteration labels but no bootstrap"));
        }

        // Re-execute the deterministic start phase. A journal that never
        // acked its start record recovers to a fresh start (which appends
        // it); one that acked `Start` but not `Bootstrap` re-runs the
        // bootstrap and appends the record now.
        if self.config.batch_size == 0 {
            return Err(UeiError::invalid_config("batch_size must be >= 1"));
        }
        if !started {
            return self.start();
        }
        let mut rng = Rng::new(self.config.seed);
        let scaler = MinMaxScaler::from_schema(self.backend.schema());
        let eval_points = if self.config.eval_sample > 0 {
            self.backend.sample_rows(self.config.eval_sample, &mut rng)?
        } else {
            Vec::new()
        };
        let eval_truth: Vec<bool> =
            eval_points.iter().map(|p| self.oracle.is_relevant_id(p.id.as_u64())).collect();
        let mut labeled = LabeledSet::new();
        self.bootstrap(&mut labeled, &mut rng)?;
        match &bootstrap {
            Some(journaled) if *journaled == journaled_labels(&labeled) => {}
            Some(_) => {
                return Err(UeiError::corrupt(
                    "journal divergence: replayed bootstrap disagrees with the journal",
                ))
            }
            None => {
                self.journal_append(&JournalRecord::Bootstrap(BootstrapRecord {
                    entries: journaled_labels(&labeled),
                }))?;
            }
        }
        let mut state = SessionState {
            scaler,
            bootstrap_labels: labeled.len(),
            labeled,
            model: None,
            labels_at_last_train: 0,
            eval_points,
            eval_truth,
            traces: Vec::new(),
            iteration: 0,
        };

        // Replay every journaled iteration: retrain-if-due + select_next
        // exactly as `step` would, but take the label and trace from the
        // journal instead of re-estimating.
        for (entry, mut trace) in labels {
            state.iteration += 1;
            if state.model.is_none()
                || state.labeled.len() - state.labels_at_last_train >= self.config.batch_size
            {
                state.model = Some(ScaledClassifier::train(
                    self.config.estimator,
                    state.scaler.clone(),
                    &state.labeled.training_data(),
                )?);
                state.labels_at_last_train = state.labeled.len();
            }
            let selected = {
                let model = state.model.as_ref().expect("trained above");
                self.backend.select_next(model, &state.labeled)?
            };
            let Some((point, _)) = selected else {
                return Err(UeiError::corrupt(format!(
                    "journal divergence: pool exhausted replaying iteration {}",
                    state.iteration
                )));
            };
            if point.id.as_u64() != entry.id {
                return Err(UeiError::corrupt(format!(
                    "journal divergence: iteration {} selected row {}, journal says {}",
                    state.iteration, point.id, entry.id
                )));
            }
            let label = self.oracle.label(&point)?;
            if label.is_positive() != entry.positive {
                return Err(UeiError::corrupt(format!(
                    "journal divergence: iteration {} label disagrees for row {}",
                    state.iteration, entry.id
                )));
            }
            state.labeled.add(point.clone(), label)?;
            self.backend.mark_labeled(point.id);
            // The restored wall-clock figures were measured by the crashed
            // process, not this one: mark them so wall-time percentile
            // pooling can exclude replayed traces. Modeled fields stay
            // replay-exact and unmarked.
            trace.wall_ms_replayed = true;
            state.traces.push(trace);
        }
        Ok(state)
    }

    /// Final exact F-measure via result retrieval (Algorithm 2 line 26)
    /// and result assembly.
    pub fn finish(&mut self, state: SessionState) -> Result<SessionResult> {
        if let Some(journal) = &mut self.journal {
            journal.sync()?;
        }
        let SessionState { scaler, labeled, traces, .. } = state;
        let final_model =
            ScaledClassifier::train(self.config.estimator, scaler, &labeled.training_data())?;
        let mut predicted = self.backend.retrieve_results(&final_model)?;
        predicted.sort_unstable();
        predicted.dedup();
        let final_f = set_f_measure(&predicted, self.oracle.relevant_ids());

        Ok(SessionResult {
            backend: self.backend.name().to_string(),
            total_virtual_secs: traces.iter().map(|t| t.response_virtual_ms).sum::<f64>() / 1e3,
            total_wall_secs: traces.iter().map(|t| t.response_wall_ms).sum::<f64>() / 1e3,
            labels_used: labeled.len(),
            final_f_measure: final_f,
            traces,
        })
    }

    /// Acquires the initial positive + negative examples (paper §3.2).
    fn bootstrap(&mut self, labeled: &mut LabeledSet, rng: &mut Rng) -> Result<()> {
        let pool = self.backend.sample_rows(self.config.bootstrap_size, rng)?;
        if pool.is_empty() {
            return Err(UeiError::invalid_state("dataset is empty"));
        }
        let mut order: Vec<usize> = (0..pool.len()).collect();
        rng.shuffle(&mut order);
        for idx in order {
            if labeled.has_both_classes() {
                break;
            }
            let point = &pool[idx];
            if labeled.contains(point.id) {
                continue;
            }
            let need_pos = labeled.num_positive() == 0;
            let need_neg = labeled.len() - labeled.num_positive() == 0;
            let label = self.oracle.label(point)?;
            // Keep the first of each class; skip redundant draws so the
            // bootstrap does not flood L with negatives.
            if (label.is_positive() && need_pos) || (!label.is_positive() && need_neg) {
                labeled.add(point.clone(), label)?;
                self.backend.mark_labeled(point.id);
            }
        }
        if labeled.num_positive() == 0 {
            // REQUEST's data-reduction substitute: the user supplies one
            // relevant example.
            let seed_id = *self
                .oracle
                .relevant_ids()
                .first()
                .ok_or_else(|| UeiError::invalid_state("target region is empty"))?;
            let row =
                self.backend.fetch_rows(&[seed_id])?.pop().expect("fetch of one id yields one row");
            self.backend.mark_labeled(row.id);
            labeled.add(row, Label::Positive)?;
        }
        if !labeled.has_both_classes() {
            // Degenerate dataset where everything is relevant; synthesize a
            // negative from the sample (cannot happen for the paper's
            // ≤0.8 % regions, but keeps the API total).
            return Err(UeiError::invalid_state("bootstrap could not find a negative example"));
        }
        Ok(())
    }
}

/// F-measure of `model` on a labeled evaluation sample.
fn estimate_f(model: &dyn Classifier, points: &[DataPoint], truth: &[bool]) -> f64 {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (p, &relevant) in points.iter().zip(truth) {
        let predicted = model.predict(&p.values).is_positive();
        match (relevant, predicted) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    let m = uei_learn::metrics::ConfusionMatrix { tp, fp, fn_, tn: 0 };
    m.f_measure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DbmsBackend, UeiBackend};
    use crate::synth::{generate_sdss_like, SynthConfig};
    use crate::workload::generate_target_region_fraction;
    use std::path::PathBuf;
    use std::sync::Arc;
    use uei_dbms::buffer::BufferPool;
    use uei_dbms::table::Table;
    use uei_index::config::UeiConfig;
    use uei_storage::io::IoProfile;
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::Schema;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-session-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fixture(tag: &str, n: usize, fraction: f64) -> (Vec<DataPoint>, Oracle, PathBuf) {
        let rows = generate_sdss_like(&SynthConfig { rows: n, ..Default::default() });
        let mut rng = Rng::new(13);
        let target =
            generate_target_region_fraction(&rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        (rows, Oracle::new(target), temp_dir(tag))
    }

    fn quick_config() -> SessionConfig {
        SessionConfig {
            max_labels: 25,
            bootstrap_size: 200,
            eval_sample: 400,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn uei_session_runs_and_improves() {
        let (rows, oracle, dir) = fixture("uei", 4000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(1);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            300,
            &mut rng,
        )
        .unwrap();
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        assert_eq!(result.backend, "uei");
        assert!(result.labels_used >= 20, "used {} labels", result.labels_used);
        assert!(!result.traces.is_empty());
        assert!(result.final_f_measure > 0.0, "final F {}", result.final_f_measure);
        // Traces carry UEI-specific fields, including cache activity from
        // the region loads.
        assert!(result.traces.iter().all(|t| t.region_rows.is_some()));
        assert!(
            result.traces.iter().any(|t| t.counters.cache_hits + t.counters.cache_misses > 0),
            "region loads must register chunk-cache lookups"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dbms_session_runs_and_scans() {
        let (rows, oracle, dir) = fixture("dbms", 3000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create(dir.join("t"), Schema::sdss(), &rows, &tracker).unwrap();
        let pool = BufferPool::new(2, tracker.clone()).unwrap();
        let mut backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        assert_eq!(result.backend, "dbms");
        assert!(result.traces.iter().all(|t| t.examined == Some(3000)));
        assert!(result.final_f_measure > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traces_are_well_formed() {
        let (rows, oracle, dir) = fixture("traces", 2500, 0.02);
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(2);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            200,
            &mut rng,
        )
        .unwrap();
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        for (i, t) in result.traces.iter().enumerate() {
            assert_eq!(t.iteration, i + 1);
            assert!(t.labels >= 2, "model always trained on both classes");
            assert!(t.response_virtual_ms >= 0.0);
            assert!(t.response_wall_ms > 0.0);
            if let Some(f) = t.f_measure {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // Labels increase monotonically.
        for w in result.traces.windows(2) {
            assert_eq!(w[1].labels, w[0].labels + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bootstrap_seeds_positive_for_tiny_regions() {
        // 0.1 % region in 3000 rows = ~3 relevant tuples; a 100-row
        // bootstrap pool will essentially never contain one.
        let (rows, oracle, dir) = fixture("seedpos", 3000, 0.001);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(3);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            100,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig {
            max_labels: 10,
            bootstrap_size: 100,
            eval_sample: 200,
            ..SessionConfig::default()
        };
        let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
        assert!(result.labels_used >= 2, "bootstrap found both classes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_size_reduces_retraining_but_still_learns() {
        let (rows, oracle, dir) = fixture("batch", 2500, 0.02);
        let run = |batch: usize, tag: &str| {
            let tracker = DiskTracker::new(IoProfile::instant());
            let store = ColumnStore::create(
                dir.join(tag),
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap();
            let mut rng = Rng::new(4);
            let mut backend = UeiBackend::new(
                Arc::new(store),
                UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
                UncertaintyMeasure::LeastConfidence,
                200,
                &mut rng,
            )
            .unwrap();
            let config = SessionConfig {
                max_labels: 20,
                batch_size: batch,
                bootstrap_size: 150,
                eval_sample: 300,
                ..SessionConfig::default()
            };
            ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap()
        };
        let every = run(1, "b1");
        let batched = run(5, "b5");
        assert!(every.labels_used >= 15);
        assert!(batched.labels_used >= 15);
        assert!(batched.final_f_measure > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (rows, oracle, dir) = fixture("zerobatch", 1000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(4);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            100,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig { batch_size: 0, max_labels: 5, ..SessionConfig::default() };
        assert!(ExplorationSession::new(&mut backend, &oracle, config, tracker).run().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, oracle, dir) = fixture("det", 2000, 0.02);
        let run = |tag: &str| -> SessionResult {
            let tracker = DiskTracker::new(IoProfile::instant());
            let store = ColumnStore::create(
                dir.join(tag),
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap();
            let mut rng = Rng::new(7);
            let mut backend = UeiBackend::new(
                Arc::new(store),
                UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
                UncertaintyMeasure::LeastConfidence,
                150,
                &mut rng,
            )
            .unwrap();
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap()
        };
        let a = run("a");
        let b = run("b");
        assert_eq!(a.labels_used, b.labels_used);
        assert_eq!(a.final_f_measure, b.final_f_measure);
        let ids_a: Vec<usize> = a.traces.iter().map(|t| t.iteration).collect();
        let ids_b: Vec<usize> = b.traces.iter().map(|t| t.iteration).collect();
        assert_eq!(ids_a, ids_b);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
