//! The exploration session: the shared iteration loop and its measurement.
//!
//! Implements the human-in-the-loop workflow of Algorithms 1/2 against any
//! [`ExplorationBackend`], with the paper's measurement methodology:
//!
//! - the **response time** of an iteration is the time between two
//!   subsequent examples — model (re)training plus example selection (for
//!   UEI that includes the region load; for the DBMS scheme the exhaustive
//!   scan). Virtual (modeled-disk) time and wall-clock are both recorded;
//! - **accuracy** is the F-measure of the positive-classified set against
//!   the oracle set (Table 1). Per-iteration F-measure is estimated on a
//!   fixed uniform evaluation sample drawn once at session start (scoring
//!   all n rows every iteration would itself be an exhaustive scan); the
//!   final F-measure is exact, via full result retrieval (line 26).
//!
//! ## Bootstrap
//!
//! The initial model needs "at least one positive example and one negative
//! example" (§3.2). With a 0.1 % target region, uniform draws rarely hit a
//! positive; REQUEST solves this with its data-reduction stage. We
//! substitute: if the bootstrap pool contains no positive, the simulated
//! user supplies one relevant tuple (fetched by id through the backend,
//! charged to the same I/O model). DESIGN.md documents this substitution.

use std::time::Instant;

use serde::{Deserialize, Serialize};
use uei_learn::dataset::LabeledSet;
use uei_learn::metrics::set_f_measure;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, EstimatorKind, MinMaxScaler, ScaledClassifier};
use uei_storage::DiskTracker;
use uei_types::{DataPoint, Label, Result, Rng, UeiError};

use crate::backend::ExplorationBackend;
use crate::oracle::Oracle;

/// Session parameters (defaults follow Table 1 where applicable).
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// The uncertainty estimator (Table 1: DWKNN).
    pub estimator: EstimatorKind,
    /// The uncertainty measure (least confidence, Eq. 1).
    pub measure: UncertaintyMeasure,
    /// Stop after this many labeled examples.
    pub max_labels: usize,
    /// Sample batch size `B` (Algorithm 1): the classifier is retrained
    /// after every `B` labels. `B = 1` (the default) retrains every
    /// iteration; larger batches trade convergence speed for less training
    /// work — "a tunable parameter of the active learning-based IDE
    /// balancing the effectiveness and efficiency" (paper §2.2).
    pub batch_size: usize,
    /// Size of the uniform pool used to bootstrap the initial examples.
    pub bootstrap_size: usize,
    /// Evaluation-sample size for per-iteration F-measure estimates.
    pub eval_sample: usize,
    /// Estimate F-measure every this many labels (1 = every iteration).
    pub eval_every: usize,
    /// Master seed for the session's randomness.
    pub seed: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            estimator: EstimatorKind::Dwknn { k: 5 },
            measure: UncertaintyMeasure::LeastConfidence,
            max_labels: 100,
            batch_size: 1,
            bootstrap_size: 500,
            eval_sample: 2000,
            eval_every: 1,
            seed: 42,
        }
    }
}

/// Measurements of one exploration iteration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IterationTrace {
    /// 1-based iteration number.
    pub iteration: usize,
    /// Labels the model was trained on at selection time.
    pub labels: usize,
    /// Estimated F-measure of that model on the evaluation sample
    /// (`None` on iterations where evaluation was skipped).
    pub f_measure: Option<f64>,
    /// Modeled (virtual-disk) response time, milliseconds.
    pub response_virtual_ms: f64,
    /// Wall-clock response time, milliseconds.
    pub response_wall_ms: f64,
    /// Bytes read from (modeled) disk during the iteration.
    pub bytes_read: u64,
    /// Seeks charged during the iteration.
    pub seeks: u64,
    /// The label the simulated user assigned.
    pub label_positive: bool,
    /// UEI: loaded region size (rows), if applicable.
    pub region_rows: Option<usize>,
    /// UEI: whether the region came from the prefetcher.
    pub prefetched: bool,
    /// UEI: chunk-cache hits during the iteration.
    #[serde(default)]
    pub cache_hits: u64,
    /// UEI: chunk-cache misses during the iteration.
    #[serde(default)]
    pub cache_misses: u64,
    /// UEI: chunk-cache evictions during the iteration.
    #[serde(default)]
    pub cache_evictions: u64,
    /// UEI: oversized-chunk cache bypasses during the iteration.
    #[serde(default)]
    pub cache_bypasses: u64,
    /// UEI: bytes read by the background prefetcher during the iteration
    /// (modeled I/O attributed to the background tracker, never to the
    /// foreground response time).
    #[serde(default)]
    pub prefetch_bytes_read: u64,
    /// UEI: transient-storage-error retries absorbed during the iteration.
    #[serde(default)]
    pub retries: u64,
    /// UEI: candidate ranks skipped past storage-faulted cells before a
    /// region loaded (graceful degradation).
    #[serde(default)]
    pub fallback_cells: u64,
    /// UEI: the iteration was served from the resident pool `U` because
    /// every ranked candidate region failed with a storage fault.
    #[serde(default)]
    pub degraded: bool,
    /// UEI: index points actually rescored this iteration (the dirty set
    /// under incremental rescoring; all of them under full rescoring).
    #[serde(default)]
    pub points_rescored: u64,
    /// UEI: index points served verbatim from the per-session score cache
    /// this iteration.
    #[serde(default)]
    pub points_cached: u64,
    /// DBMS: tuples examined by the exhaustive scan, if applicable.
    pub examined: Option<u64>,
}

/// The outcome of a whole session.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionResult {
    /// Backend name ("uei" / "dbms").
    pub backend: String,
    /// Per-iteration traces.
    pub traces: Vec<IterationTrace>,
    /// Exact final F-measure via full result retrieval.
    pub final_f_measure: f64,
    /// Virtual seconds across all iterations (response times only).
    pub total_virtual_secs: f64,
    /// Wall seconds across all iterations.
    pub total_wall_secs: f64,
    /// Labels consumed (≤ `max_labels`; fewer if the pool drained).
    pub labels_used: usize,
}

/// The mutable state of one exploration session: everything that changes as
/// labels arrive — the labeled set `L`, the current model, the fixed
/// evaluation sample, and the per-iteration traces.
///
/// Splitting this out of the driver makes the concurrency story explicit:
/// an [`ExplorationSession`] is a thin loop over a `SessionState` plus a
/// backend, and N independent `SessionState`s (each with its own backend
/// opened via `EngineCore::open_session` and its own virtual disk clock)
/// can run on N threads against one shared engine. See DESIGN.md §10.
pub struct SessionState {
    scaler: MinMaxScaler,
    labeled: LabeledSet,
    model: Option<ScaledClassifier>,
    labels_at_last_train: usize,
    /// Fixed uniform evaluation sample drawn once at session start.
    eval_points: Vec<DataPoint>,
    eval_truth: Vec<bool>,
    traces: Vec<IterationTrace>,
    iteration: usize,
}

impl SessionState {
    /// The labeled set `L` accumulated so far.
    pub fn labeled(&self) -> &LabeledSet {
        &self.labeled
    }

    /// Per-iteration traces recorded so far.
    pub fn traces(&self) -> &[IterationTrace] {
        &self.traces
    }

    /// 1-based number of completed iterations.
    pub fn iteration(&self) -> usize {
        self.iteration
    }
}

impl std::fmt::Debug for SessionState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionState")
            .field("labels", &self.labeled.len())
            .field("iteration", &self.iteration)
            .finish_non_exhaustive()
    }
}

/// Drives one exploration session of a backend against an oracle.
pub struct ExplorationSession<'a> {
    backend: &'a mut dyn ExplorationBackend,
    oracle: &'a Oracle,
    config: SessionConfig,
    tracker: DiskTracker,
}

impl<'a> ExplorationSession<'a> {
    /// Creates a session. `tracker` must be the same I/O model the
    /// backend's storage charges, so response times cover its reads. For a
    /// backend opened from a shared engine, that is the *session* store's
    /// tracker (`backend.index().store().tracker()`), never the engine's.
    pub fn new(
        backend: &'a mut dyn ExplorationBackend,
        oracle: &'a Oracle,
        config: SessionConfig,
        tracker: DiskTracker,
    ) -> ExplorationSession<'a> {
        ExplorationSession { backend, oracle, config, tracker }
    }

    /// Runs the session to completion.
    pub fn run(mut self) -> Result<SessionResult> {
        let mut state = self.start()?;
        while state.labeled.len() < self.config.max_labels {
            if !self.step(&mut state)? {
                break; // candidate pool exhausted
            }
        }
        self.finish(state)
    }

    /// Initializes the per-session state: validates the config, draws the
    /// fixed evaluation sample, and bootstraps the initial labeled set
    /// (one positive + one negative example).
    pub fn start(&mut self) -> Result<SessionState> {
        if self.config.batch_size == 0 {
            return Err(UeiError::invalid_config("batch_size must be >= 1"));
        }
        let mut rng = Rng::new(self.config.seed);
        let scaler = MinMaxScaler::from_schema(self.backend.schema());

        // Fixed evaluation sample with oracle ground truth.
        let eval_points = if self.config.eval_sample > 0 {
            self.backend.sample_rows(self.config.eval_sample, &mut rng)?
        } else {
            Vec::new()
        };
        let eval_truth: Vec<bool> =
            eval_points.iter().map(|p| self.oracle.is_relevant_id(p.id.as_u64())).collect();

        // Bootstrap the initial labeled set (one positive + one negative).
        let mut labeled = LabeledSet::new();
        self.bootstrap(&mut labeled, &mut rng)?;

        Ok(SessionState {
            scaler,
            labeled,
            model: None,
            labels_at_last_train: 0,
            eval_points,
            eval_truth,
            traces: Vec::new(),
            iteration: 0,
        })
    }

    /// Runs one exploration iteration: retrain if due, select the next
    /// example, solicit its label, and record the trace. Returns `false`
    /// when the candidate pool is exhausted (no trace is recorded then).
    pub fn step(&mut self, state: &mut SessionState) -> Result<bool> {
        state.iteration += 1;
        let labels_at_train = state.labeled.len();

        let wall_start = Instant::now();
        let io_before = self.tracker.snapshot();

        // Retrain on L every `B` labels (Algorithm 1 lines 5–11 /
        // Algorithm 2 line 16). With B = 1 this is every iteration.
        if state.model.is_none()
            || state.labeled.len() - state.labels_at_last_train >= self.config.batch_size
        {
            state.model = Some(ScaledClassifier::train(
                self.config.estimator,
                state.scaler.clone(),
                &state.labeled.training_data(),
            )?);
            state.labels_at_last_train = state.labeled.len();
        }

        // Select the next example (lines 17–21 / line 6).
        let selected = {
            let model = state.model.as_ref().expect("trained above");
            self.backend.select_next(model, &state.labeled)?
        };
        let delta = self.tracker.delta(&io_before);
        let wall = wall_start.elapsed();

        let Some((point, info)) = selected else {
            return Ok(false); // candidate pool exhausted
        };

        // Solicit the user's label (line 22).
        let label = self.oracle.label(&point)?;
        state.labeled.add(point.clone(), label)?;
        self.backend.mark_labeled(point.id);

        // Accuracy estimate for the model that made this selection.
        let f_measure = if !state.eval_points.is_empty()
            && (state.iteration.is_multiple_of(self.config.eval_every)
                || state.labeled.len() >= self.config.max_labels)
        {
            let model = state.model.as_ref().expect("trained above");
            Some(estimate_f(model, &state.eval_points, &state.eval_truth))
        } else {
            None
        };

        state.traces.push(IterationTrace {
            iteration: state.iteration,
            labels: labels_at_train,
            f_measure,
            response_virtual_ms: delta.virtual_elapsed.as_secs_f64() * 1e3,
            response_wall_ms: wall.as_secs_f64() * 1e3,
            bytes_read: delta.stats.bytes_read,
            seeks: delta.stats.seeks,
            label_positive: label.is_positive(),
            region_rows: info.region_rows,
            prefetched: info.prefetched,
            cache_hits: info.cache_hits,
            cache_misses: info.cache_misses,
            cache_evictions: info.cache_evictions,
            cache_bypasses: info.cache_bypasses,
            prefetch_bytes_read: info.prefetch_bytes_read,
            retries: info.retries,
            fallback_cells: info.fallback_cells,
            degraded: info.degraded,
            points_rescored: info.points_rescored,
            points_cached: info.points_cached,
            examined: info.examined,
        });
        Ok(true)
    }

    /// Final exact F-measure via result retrieval (Algorithm 2 line 26)
    /// and result assembly.
    pub fn finish(&mut self, state: SessionState) -> Result<SessionResult> {
        let SessionState { scaler, labeled, traces, .. } = state;
        let final_model =
            ScaledClassifier::train(self.config.estimator, scaler, &labeled.training_data())?;
        let mut predicted = self.backend.retrieve_results(&final_model)?;
        predicted.sort_unstable();
        predicted.dedup();
        let final_f = set_f_measure(&predicted, self.oracle.relevant_ids());

        Ok(SessionResult {
            backend: self.backend.name().to_string(),
            total_virtual_secs: traces.iter().map(|t| t.response_virtual_ms).sum::<f64>() / 1e3,
            total_wall_secs: traces.iter().map(|t| t.response_wall_ms).sum::<f64>() / 1e3,
            labels_used: labeled.len(),
            final_f_measure: final_f,
            traces,
        })
    }

    /// Acquires the initial positive + negative examples (paper §3.2).
    fn bootstrap(&mut self, labeled: &mut LabeledSet, rng: &mut Rng) -> Result<()> {
        let pool = self.backend.sample_rows(self.config.bootstrap_size, rng)?;
        if pool.is_empty() {
            return Err(UeiError::invalid_state("dataset is empty"));
        }
        let mut order: Vec<usize> = (0..pool.len()).collect();
        rng.shuffle(&mut order);
        for idx in order {
            if labeled.has_both_classes() {
                break;
            }
            let point = &pool[idx];
            if labeled.contains(point.id) {
                continue;
            }
            let need_pos = labeled.num_positive() == 0;
            let need_neg = labeled.len() - labeled.num_positive() == 0;
            let label = self.oracle.label(point)?;
            // Keep the first of each class; skip redundant draws so the
            // bootstrap does not flood L with negatives.
            if (label.is_positive() && need_pos) || (!label.is_positive() && need_neg) {
                labeled.add(point.clone(), label)?;
                self.backend.mark_labeled(point.id);
            }
        }
        if labeled.num_positive() == 0 {
            // REQUEST's data-reduction substitute: the user supplies one
            // relevant example.
            let seed_id = *self
                .oracle
                .relevant_ids()
                .first()
                .ok_or_else(|| UeiError::invalid_state("target region is empty"))?;
            let row =
                self.backend.fetch_rows(&[seed_id])?.pop().expect("fetch of one id yields one row");
            self.backend.mark_labeled(row.id);
            labeled.add(row, Label::Positive)?;
        }
        if !labeled.has_both_classes() {
            // Degenerate dataset where everything is relevant; synthesize a
            // negative from the sample (cannot happen for the paper's
            // ≤0.8 % regions, but keeps the API total).
            return Err(UeiError::invalid_state("bootstrap could not find a negative example"));
        }
        Ok(())
    }
}

/// F-measure of `model` on a labeled evaluation sample.
fn estimate_f(model: &dyn Classifier, points: &[DataPoint], truth: &[bool]) -> f64 {
    let mut tp = 0u64;
    let mut fp = 0u64;
    let mut fn_ = 0u64;
    for (p, &relevant) in points.iter().zip(truth) {
        let predicted = model.predict(&p.values).is_positive();
        match (relevant, predicted) {
            (true, true) => tp += 1,
            (false, true) => fp += 1,
            (true, false) => fn_ += 1,
            (false, false) => {}
        }
    }
    let m = uei_learn::metrics::ConfusionMatrix { tp, fp, fn_, tn: 0 };
    m.f_measure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{DbmsBackend, UeiBackend};
    use crate::synth::{generate_sdss_like, SynthConfig};
    use crate::workload::generate_target_region_fraction;
    use std::path::PathBuf;
    use std::sync::Arc;
    use uei_dbms::buffer::BufferPool;
    use uei_dbms::table::Table;
    use uei_index::config::UeiConfig;
    use uei_storage::io::IoProfile;
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::Schema;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-session-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn fixture(tag: &str, n: usize, fraction: f64) -> (Vec<DataPoint>, Oracle, PathBuf) {
        let rows = generate_sdss_like(&SynthConfig { rows: n, ..Default::default() });
        let mut rng = Rng::new(13);
        let target =
            generate_target_region_fraction(&rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        (rows, Oracle::new(target), temp_dir(tag))
    }

    fn quick_config() -> SessionConfig {
        SessionConfig {
            max_labels: 25,
            bootstrap_size: 200,
            eval_sample: 400,
            ..SessionConfig::default()
        }
    }

    #[test]
    fn uei_session_runs_and_improves() {
        let (rows, oracle, dir) = fixture("uei", 4000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(1);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            300,
            &mut rng,
        )
        .unwrap();
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        assert_eq!(result.backend, "uei");
        assert!(result.labels_used >= 20, "used {} labels", result.labels_used);
        assert!(!result.traces.is_empty());
        assert!(result.final_f_measure > 0.0, "final F {}", result.final_f_measure);
        // Traces carry UEI-specific fields, including cache activity from
        // the region loads.
        assert!(result.traces.iter().all(|t| t.region_rows.is_some()));
        assert!(
            result.traces.iter().any(|t| t.cache_hits + t.cache_misses > 0),
            "region loads must register chunk-cache lookups"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dbms_session_runs_and_scans() {
        let (rows, oracle, dir) = fixture("dbms", 3000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let table = Table::create(dir.join("t"), Schema::sdss(), &rows, &tracker).unwrap();
        let pool = BufferPool::new(2, tracker.clone()).unwrap();
        let mut backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        assert_eq!(result.backend, "dbms");
        assert!(result.traces.iter().all(|t| t.examined == Some(3000)));
        assert!(result.final_f_measure > 0.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn traces_are_well_formed() {
        let (rows, oracle, dir) = fixture("traces", 2500, 0.02);
        let tracker = DiskTracker::new(IoProfile::nvme());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(2);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            200,
            &mut rng,
        )
        .unwrap();
        let result =
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap();
        for (i, t) in result.traces.iter().enumerate() {
            assert_eq!(t.iteration, i + 1);
            assert!(t.labels >= 2, "model always trained on both classes");
            assert!(t.response_virtual_ms >= 0.0);
            assert!(t.response_wall_ms > 0.0);
            if let Some(f) = t.f_measure {
                assert!((0.0..=1.0).contains(&f));
            }
        }
        // Labels increase monotonically.
        for w in result.traces.windows(2) {
            assert_eq!(w[1].labels, w[0].labels + 1);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bootstrap_seeds_positive_for_tiny_regions() {
        // 0.1 % region in 3000 rows = ~3 relevant tuples; a 100-row
        // bootstrap pool will essentially never contain one.
        let (rows, oracle, dir) = fixture("seedpos", 3000, 0.001);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(3);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            100,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig {
            max_labels: 10,
            bootstrap_size: 100,
            eval_sample: 200,
            ..SessionConfig::default()
        };
        let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
        assert!(result.labels_used >= 2, "bootstrap found both classes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_size_reduces_retraining_but_still_learns() {
        let (rows, oracle, dir) = fixture("batch", 2500, 0.02);
        let run = |batch: usize, tag: &str| {
            let tracker = DiskTracker::new(IoProfile::instant());
            let store = ColumnStore::create(
                dir.join(tag),
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap();
            let mut rng = Rng::new(4);
            let mut backend = UeiBackend::new(
                Arc::new(store),
                UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
                UncertaintyMeasure::LeastConfidence,
                200,
                &mut rng,
            )
            .unwrap();
            let config = SessionConfig {
                max_labels: 20,
                batch_size: batch,
                bootstrap_size: 150,
                eval_sample: 300,
                ..SessionConfig::default()
            };
            ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap()
        };
        let every = run(1, "b1");
        let batched = run(5, "b5");
        assert!(every.labels_used >= 15);
        assert!(batched.labels_used >= 15);
        assert!(batched.final_f_measure > 0.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_batch_size_rejected() {
        let (rows, oracle, dir) = fixture("zerobatch", 1000, 0.02);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(4);
        let mut backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            100,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig { batch_size: 0, max_labels: 5, ..SessionConfig::default() };
        assert!(ExplorationSession::new(&mut backend, &oracle, config, tracker).run().is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn deterministic_given_seed() {
        let (rows, oracle, dir) = fixture("det", 2000, 0.02);
        let run = |tag: &str| -> SessionResult {
            let tracker = DiskTracker::new(IoProfile::instant());
            let store = ColumnStore::create(
                dir.join(tag),
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap();
            let mut rng = Rng::new(7);
            let mut backend = UeiBackend::new(
                Arc::new(store),
                UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
                UncertaintyMeasure::LeastConfidence,
                150,
                &mut rng,
            )
            .unwrap();
            ExplorationSession::new(&mut backend, &oracle, quick_config(), tracker).run().unwrap()
        };
        let a = run("a");
        let b = run("b");
        assert_eq!(a.labels_used, b.labels_used);
        assert_eq!(a.final_f_measure, b.final_f_measure);
        let ids_a: Vec<usize> = a.traces.iter().map(|t| t.iteration).collect();
        let ids_b: Vec<usize> = b.traces.iter().map(|t| t.iteration).collect();
        assert_eq!(ids_a, ids_b);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
