//! Exploration backends: the two storage schemes under comparison.
//!
//! The paper evaluates one IDE system (REQUEST) "with two schemes, one
//! incorporating UEI, and one utilizing MySQL" (§4). The
//! [`ExplorationBackend`] trait is the seam between the shared exploration
//! loop and those schemes:
//!
//! - [`UeiBackend`] — Algorithm 2: keeps a uniform sample `U` in memory,
//!   asks the Uncertainty Estimation Index for the most uncertain subspace
//!   each iteration, and selects the next example from `U ∪ g*`;
//! - [`DbmsBackend`] — Algorithm 1 over the MySQL-like row store: each
//!   iteration performs the exhaustive uncertainty scan over the whole
//!   table through a restricted buffer pool.

use std::sync::Arc;

use uei_dbms::buffer::BufferPool;
use uei_dbms::scan::exhaustive_most_uncertain;
use uei_dbms::table::Table;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_index::uei::{LoadSource, UeiIndex};
use uei_learn::dataset::{LabeledSet, UnlabeledPool};
use uei_learn::strategy::{QueryStrategy, RandomSampling, UncertaintyMeasure, UncertaintySampling};
use uei_learn::Classifier;
use uei_obs::{FlightEventKind, ObsCounters, PhaseMs, SessionTelemetry};
use uei_storage::store::ColumnStore;
use uei_types::{DataPoint, Result, Rng, RowId, Schema, UeiError};

/// Per-selection diagnostics reported by a backend.
#[derive(Debug, Default, Clone)]
pub struct SelectionInfo {
    /// UEI: the chosen cell id.
    pub cell: Option<usize>,
    /// UEI: rows in the loaded region.
    pub region_rows: Option<usize>,
    /// UEI: whether the region came from the prefetcher.
    pub prefetched: bool,
    /// UEI: current candidate-pool size.
    pub pool_size: Option<usize>,
    /// The modeled per-selection observability counters (cache traffic,
    /// degradation ladder, rescoring work), deltas over this selection.
    /// See [`ObsCounters`] for per-field docs; `degraded` means the final
    /// rung fired and the selection was served from the resident pool `U`.
    pub counters: ObsCounters,
    /// Stamped by the session driver (never by backends): the selection
    /// happened in a session resumed from its journal after a crash.
    pub recovered: bool,
    /// DBMS: tuples examined by the exhaustive scan.
    pub examined: Option<u64>,
    /// Wall/virtual phase-timing breakdown of this selection (empty when
    /// telemetry is disabled — purely observational, never modeled).
    pub phase_ms: Vec<PhaseMs>,
}

/// A storage scheme the exploration loop can run on.
pub trait ExplorationBackend {
    /// Scheme name for reports ("uei" / "dbms").
    fn name(&self) -> &'static str;

    /// Dataset schema.
    fn schema(&self) -> &Schema;

    /// Number of rows in the dataset.
    fn num_rows(&self) -> u64;

    /// Uniformly samples `k` rows (used for bootstrap and for the
    /// harness's evaluation sample). Charged to the shared I/O model.
    fn sample_rows(&mut self, k: usize, rng: &mut Rng) -> Result<Vec<DataPoint>>;

    /// Fetches specific rows by id (the substitute for REQUEST's
    /// data-reduction stage when bootstrap sampling finds no positive).
    fn fetch_rows(&mut self, ids: &[u64]) -> Result<Vec<DataPoint>>;

    /// Selects the next example to present for labeling, given the current
    /// model. Must never return an already-labeled row.
    fn select_next(
        &mut self,
        model: &dyn Classifier,
        labeled: &LabeledSet,
    ) -> Result<Option<(DataPoint, SelectionInfo)>>;

    /// Informs the backend that `id` has been labeled (leaves any pools).
    fn mark_labeled(&mut self, id: RowId);

    /// Final result retrieval (Algorithm 2 line 26): row ids the model
    /// classifies positive, ascending, via a full pass over the dataset.
    fn retrieve_results(&mut self, model: &dyn Classifier) -> Result<Vec<u64>>;

    /// The backend's session telemetry handle, when it has one. The
    /// exploration session records its own phase spans (model refit, eval,
    /// journal appends) through this; backends without telemetry (DBMS)
    /// return `None` and the session runs uninstrumented.
    fn telemetry(&self) -> Option<&SessionTelemetry> {
        None
    }
}

/// Chunk evictions within a single selection at or above this count are
/// logged to the flight recorder as an eviction storm.
const EVICTION_STORM_THRESHOLD: u64 = 32;

/// Rows per block in final-result retrieval. Retrieval streams the dataset
/// and scores it block-at-a-time through [`Classifier::predict_proba_batch`],
/// so the scan keeps its sequential I/O pattern while the model evaluation
/// fans out; well above the batch layer's parallel threshold.
const RETRIEVE_BLOCK_ROWS: usize = 4096;

/// Scores one buffered block and appends the ids classified positive
/// (posterior ≥ 0.5, the same threshold as [`Classifier::predict`]) in
/// block order. Clears the block for reuse.
fn flush_retrieve_block(model: &dyn Classifier, block: &mut Vec<DataPoint>, out: &mut Vec<u64>) {
    let refs: Vec<&[f64]> = block.iter().map(|p| p.values.as_slice()).collect();
    let probs = model.predict_proba_batch(&refs);
    for (point, prob) in block.iter().zip(probs) {
        if prob >= 0.5 {
            out.push(point.id.as_u64());
        }
    }
    block.clear();
}

/// The shared body of [`ExplorationBackend::retrieve_results`]: drives any
/// row-streaming `scan` (the UEI column store's `scan_all`, the DBMS heap
/// scan), buffers rows into [`RETRIEVE_BLOCK_ROWS`]-sized blocks, and scores
/// each block through the batch prediction path. Returned ids are in stream
/// order — callers whose scan is not id-ordered sort afterwards.
fn retrieve_streaming<S>(model: &dyn Classifier, scan: S) -> Result<Vec<u64>>
where
    S: FnOnce(&mut dyn FnMut(DataPoint)) -> Result<()>,
{
    let mut out = Vec::new();
    let mut block = Vec::with_capacity(RETRIEVE_BLOCK_ROWS);
    scan(&mut |p| {
        block.push(p);
        if block.len() >= RETRIEVE_BLOCK_ROWS {
            flush_retrieve_block(model, &mut block, &mut out);
        }
    })?;
    flush_retrieve_block(model, &mut block, &mut out);
    Ok(out)
}

// ---------------------------------------------------------------------------
// UEI scheme
// ---------------------------------------------------------------------------

/// The UEI scheme (Algorithm 2).
pub struct UeiBackend {
    index: UeiIndex,
    pool: UnlabeledPool,
    strategy: Box<dyn QueryStrategy + Send>,
    gamma: usize,
    /// Training length of the model at the last rescoring pass. The
    /// exploration loop always retrains on the full (append-only) labeled
    /// set, so the labeled entries between this watermark and the current
    /// model's [`Classifier::training_len`] are exactly the examples the
    /// model gained since the index points were last scored — the
    /// influence sources for incremental invalidation. Tracking the
    /// *training* length (not the labeled-set length) matters: labels
    /// accrue for several iterations before one retrain folds them all in,
    /// and every one of them must participate in the dirty test.
    rescored_train_len: usize,
}

impl UeiBackend {
    /// Builds the scheme over an initialized column store: constructs the
    /// index (lines 7–11) and fills the unlabeled cache `U` with a uniform
    /// sample of `gamma` rows (line 12).
    pub fn new(
        store: Arc<ColumnStore>,
        config: UeiConfig,
        measure: UncertaintyMeasure,
        gamma: usize,
        rng: &mut Rng,
    ) -> Result<UeiBackend> {
        let regions_in_memory = config.regions_in_memory;
        let index = UeiIndex::build_with_measure(store, config, measure)?;
        let sample = index.sample_unlabeled(gamma, rng)?;
        Ok(UeiBackend {
            index,
            pool: UnlabeledPool::with_region_capacity(sample, regions_in_memory),
            strategy: Box::new(UncertaintySampling::new(measure)),
            gamma,
            rescored_train_len: 0,
        })
    }

    /// Builds the scheme as one session of a shared [`EngineCore`]: the
    /// store, manifest, grid, mapping, and decoded-chunk cache are shared
    /// with every other session of the engine (by `Arc`, zero data copies),
    /// while the index-point scores, unlabeled cache `U`, virtual disk
    /// clock, and degradation counters are private to this backend.
    ///
    /// The per-session I/O model lives on the session's store handle:
    /// drive the returned backend with an
    /// [`ExplorationSession`](crate::session::ExplorationSession) built
    /// over `backend.index().store().tracker()`.
    pub fn from_engine(engine: &EngineCore, gamma: usize, rng: &mut Rng) -> Result<UeiBackend> {
        let index = engine.open_session()?;
        let regions_in_memory = index.config().regions_in_memory;
        let sample = index.sample_unlabeled(gamma, rng)?;
        Ok(UeiBackend {
            index,
            pool: UnlabeledPool::with_region_capacity(sample, regions_in_memory),
            strategy: Box::new(UncertaintySampling::new(engine.measure())),
            gamma,
            rescored_train_len: 0,
        })
    }

    /// Replaces the example-selection strategy (default: uncertainty
    /// sampling). [`RandomSampling`] gives the classic "is active learning
    /// worth it" baseline; query-by-committee plugs in the same way.
    pub fn set_strategy(&mut self, strategy: Box<dyn QueryStrategy + Send>) {
        self.strategy = strategy;
    }

    /// Convenience: switch to uniform random selection with a seed.
    pub fn use_random_strategy(&mut self, seed: u64) {
        self.strategy = Box::new(RandomSampling::new(seed));
    }

    /// The underlying index (diagnostics).
    pub fn index(&self) -> &UeiIndex {
        &self.index
    }

    /// The configured uniform-sample size γ.
    pub fn gamma(&self) -> usize {
        self.gamma
    }
}

impl ExplorationBackend for UeiBackend {
    fn name(&self) -> &'static str {
        "uei"
    }

    fn schema(&self) -> &Schema {
        self.index.store().schema()
    }

    fn num_rows(&self) -> u64 {
        self.index.store().num_rows()
    }

    fn sample_rows(&mut self, k: usize, rng: &mut Rng) -> Result<Vec<DataPoint>> {
        self.index.store().sample_rows(k, rng)
    }

    fn fetch_rows(&mut self, ids: &[u64]) -> Result<Vec<DataPoint>> {
        self.index.store().fetch_rows(ids)
    }

    fn select_next(
        &mut self,
        model: &dyn Classifier,
        labeled: &LabeledSet,
    ) -> Result<Option<(DataPoint, SelectionInfo)>> {
        // Lines 15–20: rescore index points, load the most uncertain
        // region, swap it into U. A `Retained` load means the deferral
        // logic kept the previous region current — it is already in the
        // pool, so nothing is swapped.
        let cache_before = self.index.cache_stats();
        let bg_before = self.index.background_io().map_or(0, |s| s.bytes_read);
        let degrade_before = self.index.degrade_counters();
        let rescore_before = self.index.rescore_counters();
        let shards_before = self.index.shards_touched();
        let tel = self.index.telemetry().clone();
        let phase_before = tel.phase_snapshot();
        match model.training_len() {
            // The labeled entries between the previous and current training
            // lengths are exactly the examples the model gained since the
            // last rescore (the loop retrains on the full append-only
            // labeled set). An unchanged model yields an empty slice — and
            // an empty dirty set; a model whose training data is not drawn
            // from `labeled` (external bootstrap) clamps to a harmless
            // superset of labeled entries.
            Some(train_len) => {
                let entries = labeled.entries();
                let to = train_len.min(entries.len());
                let from = self.rescored_train_len.min(to);
                let added: Vec<&[f64]> =
                    entries[from..to].iter().map(|(p, _)| p.values.as_slice()).collect();
                self.index.update_uncertainty_incremental(model, &added);
                self.rescored_train_len = to;
            }
            // No training size ⇒ no way to recover what changed ⇒ full
            // rescore (committees and other opaque models).
            None => self.index.update_uncertainty(model),
        }
        let rescore = self.index.rescore_counters().since(&rescore_before);
        let shards_touched = self.index.shards_touched() - shards_before;
        let (cell, region_rows, prefetched, degraded) = match self.index.select_and_load() {
            Ok(load) => {
                let region_rows = if load.source == LoadSource::Retained {
                    self.pool.region_len()
                } else {
                    load.rows.len()
                };
                if load.source != LoadSource::Retained {
                    let fresh: Vec<DataPoint> =
                        load.rows.into_iter().filter(|p| !labeled.contains(p.id)).collect();
                    self.pool.swap_region(fresh);
                }
                (Some(load.cell), Some(region_rows), load.source == LoadSource::Prefetched, false)
            }
            // Final degradation rung: every ranked candidate failed with a
            // storage fault. The iteration still proceeds — the resident
            // cache `U` stays current and the selection below samples the
            // most uncertain point it already holds.
            Err(e) if e.is_storage_fault() => (None, None, false, true),
            Err(e) => return Err(e),
        };
        let cache_delta = self.index.cache_stats().since(&cache_before);
        let prefetch_bytes_read =
            self.index.background_io().map_or(0, |s| s.bytes_read) - bg_before;
        let degrade = self.index.degrade_counters().since(&degrade_before);

        let iteration = labeled.len() as u64;
        if degraded {
            tel.event(FlightEventKind::DegradedIteration, iteration, || {
                "every ranked candidate failed; selection served from resident pool U".to_string()
            });
        }
        // A burst of evictions within one selection means the working set
        // outgrew the cache — worth a flight-recorder breadcrumb.
        if cache_delta.evictions >= EVICTION_STORM_THRESHOLD {
            tel.event(FlightEventKind::EvictionStorm, iteration, || {
                format!("{} chunk evictions in one selection", cache_delta.evictions)
            });
        }

        // Line 21: uncertainty sampling over U.
        let candidates = self.pool.candidates();
        let info = SelectionInfo {
            cell,
            region_rows,
            prefetched,
            pool_size: Some(candidates.len()),
            counters: ObsCounters {
                cache_hits: cache_delta.hits,
                cache_misses: cache_delta.misses,
                cache_evictions: cache_delta.evictions,
                cache_bypasses: cache_delta.bypasses,
                prefetch_bytes_read,
                retries: degrade.retries,
                fallback_cells: degrade.fallback_cells,
                degraded,
                points_rescored: rescore.points_rescored,
                shards_touched,
                points_cached: rescore.points_cached,
            },
            recovered: false,
            examined: None,
            phase_ms: tel.breakdown_since(&phase_before),
        };
        match self.strategy.select(model, &candidates) {
            Some(idx) => {
                let point = candidates[idx].clone();
                self.pool.remove(point.id);
                Ok(Some((point, info)))
            }
            None => Ok(None),
        }
    }

    fn mark_labeled(&mut self, id: RowId) {
        self.pool.remove(id);
    }

    fn retrieve_results(&mut self, model: &dyn Classifier) -> Result<Vec<u64>> {
        // scan_all streams in ascending id order, so the stream-ordered
        // output is already ascending without a final sort.
        let store = self.index.store();
        retrieve_streaming(model, |emit| store.scan_all(emit))
    }

    fn telemetry(&self) -> Option<&SessionTelemetry> {
        Some(self.index.telemetry())
    }
}

// ---------------------------------------------------------------------------
// DBMS scheme
// ---------------------------------------------------------------------------

/// The MySQL-like scheme (Algorithm 1 over the row store).
pub struct DbmsBackend {
    table: Table,
    pool: BufferPool,
    measure: UncertaintyMeasure,
}

impl DbmsBackend {
    /// Opens the scheme over a table with a buffer pool of
    /// `buffer_pool_pages` pages charged to `tracker` — the experiment
    /// harness sizes the pool to the paper's ~1 % memory restriction.
    pub fn new(
        table: Table,
        buffer_pool_pages: usize,
        tracker: uei_storage::DiskTracker,
        measure: UncertaintyMeasure,
    ) -> Result<DbmsBackend> {
        Ok(DbmsBackend { pool: BufferPool::new(buffer_pool_pages, tracker)?, table, measure })
    }

    /// Builds the scheme with an explicit buffer pool (the pool carries the
    /// shared [`uei_storage::DiskTracker`]).
    pub fn with_pool(table: Table, pool: BufferPool, measure: UncertaintyMeasure) -> DbmsBackend {
        DbmsBackend { table, pool, measure }
    }

    /// The table (diagnostics).
    pub fn table(&self) -> &Table {
        &self.table
    }

    /// Buffer-pool statistics.
    pub fn buffer_stats(&self) -> uei_dbms::buffer::BufferStats {
        self.pool.stats()
    }
}

impl ExplorationBackend for DbmsBackend {
    fn name(&self) -> &'static str {
        "dbms"
    }

    fn schema(&self) -> &Schema {
        self.table.schema()
    }

    fn num_rows(&self) -> u64 {
        self.table.num_rows()
    }

    fn sample_rows(&mut self, k: usize, rng: &mut Rng) -> Result<Vec<DataPoint>> {
        // `SELECT … ORDER BY RAND() LIMIT k`: a full scan with reservoir
        // sampling.
        let mut reservoir: Vec<DataPoint> = Vec::with_capacity(k);
        let mut seen = 0usize;
        self.table.scan(&mut self.pool, |p| {
            seen += 1;
            if reservoir.len() < k {
                reservoir.push(p);
            } else {
                let j = rng.below_usize(seen);
                if j < k {
                    reservoir[j] = p;
                }
            }
        })?;
        Ok(reservoir)
    }

    fn fetch_rows(&mut self, ids: &[u64]) -> Result<Vec<DataPoint>> {
        // No row-id index on the heap: a full scan with an id filter.
        let want: std::collections::HashSet<u64> = ids.iter().copied().collect();
        let rows = self.table.filter(&mut self.pool, |p| want.contains(&p.id.as_u64()))?;
        if rows.len() != want.len() {
            return Err(UeiError::not_found(format!(
                "{} of {} requested rows missing",
                want.len() - rows.len(),
                want.len()
            )));
        }
        Ok(rows)
    }

    fn select_next(
        &mut self,
        model: &dyn Classifier,
        labeled: &LabeledSet,
    ) -> Result<Option<(DataPoint, SelectionInfo)>> {
        let outcome =
            exhaustive_most_uncertain(&self.table, &mut self.pool, model, self.measure, |id| {
                labeled.contains(id)
            })?;
        let info = SelectionInfo { examined: Some(outcome.examined), ..SelectionInfo::default() };
        Ok(outcome.best.map(|p| (p, info)))
    }

    fn mark_labeled(&mut self, _id: RowId) {
        // Nothing cached per-row; the scan filter handles labeled rows.
    }

    fn retrieve_results(&mut self, model: &dyn Classifier) -> Result<Vec<u64>> {
        let table = &self.table;
        let pool = &mut self.pool;
        let mut out = retrieve_streaming(model, |emit| table.scan(pool, emit))?;
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::StoreConfig;
    use uei_types::Label;

    fn sdss_rows(n: usize) -> Vec<DataPoint> {
        crate::synth::generate_sdss_like(&crate::synth::SynthConfig {
            rows: n,
            ..Default::default()
        })
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "uei-backend-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn uei_backend(tag: &str, n: usize) -> (UeiBackend, DiskTracker, PathBuf) {
        let dir = temp_dir(tag);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = ColumnStore::create(
            dir.join("store"),
            uei_types::Schema::sdss(),
            &sdss_rows(n),
            StoreConfig { chunk_target_bytes: 4096 },
            tracker.clone(),
        )
        .unwrap();
        let mut rng = Rng::new(3);
        let backend = UeiBackend::new(
            Arc::new(store),
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            200,
            &mut rng,
        )
        .unwrap();
        (backend, tracker, dir)
    }

    fn dbms_backend(tag: &str, n: usize) -> (DbmsBackend, DiskTracker, PathBuf) {
        let dir = temp_dir(tag);
        let tracker = DiskTracker::new(IoProfile::instant());
        let table =
            Table::create(dir.join("table"), uei_types::Schema::sdss(), &sdss_rows(n), &tracker)
                .unwrap();
        let pool = BufferPool::new(4, tracker.clone()).unwrap();
        let backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
        (backend, tracker, dir)
    }

    fn trained_model(backend: &mut dyn ExplorationBackend) -> impl Classifier {
        let mut rng = Rng::new(9);
        let sample = backend.sample_rows(50, &mut rng).unwrap();
        // Arbitrary but consistent teacher: ra < 180 is positive.
        let examples: Vec<(Vec<f64>, Label)> = sample
            .iter()
            .map(|p| (p.values.clone(), Label::from_bool(p.values[2] < 180.0)))
            .collect();
        uei_learn::ScaledClassifier::train(
            uei_learn::EstimatorKind::Dwknn { k: 5 },
            uei_learn::MinMaxScaler::from_schema(backend.schema()),
            &examples,
        )
        .unwrap()
    }

    #[test]
    fn uei_backend_selects_unlabeled_points() {
        let (mut backend, _, dir) = uei_backend("select", 3000);
        let model = trained_model(&mut backend);
        let labeled = LabeledSet::new();
        let (point, info) = backend.select_next(&model, &labeled).unwrap().unwrap();
        assert_eq!(point.dims(), 5);
        assert!(info.cell.is_some());
        assert!(info.region_rows.is_some());
        assert!(info.pool_size.unwrap() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uei_backend_never_reselects_labeled() {
        let (mut backend, _, dir) = uei_backend("noreselect", 2000);
        let model = trained_model(&mut backend);
        let mut labeled = LabeledSet::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            let (point, _) = backend.select_next(&model, &labeled).unwrap().unwrap();
            assert!(seen.insert(point.id), "row {} selected twice", point.id);
            labeled.add(point.clone(), Label::Positive).unwrap();
            backend.mark_labeled(point.id);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn random_strategy_differs_from_uncertainty() {
        let (mut backend, _, dir) = uei_backend("strategy", 2000);
        let model = trained_model(&mut backend);
        let labeled = LabeledSet::new();
        // Uncertainty sampling picks the argmax (and removes it from the
        // pool, so successive calls walk down the ranking).
        let (uncertain_pick, _) = backend.select_next(&model, &labeled).unwrap().unwrap();
        let u_first = model.uncertainty(&uncertain_pick.values);
        let (runner_up, _) = backend.select_next(&model, &labeled).unwrap().unwrap();
        assert!(model.uncertainty(&runner_up.values) <= u_first + 1e-12);

        backend.use_random_strategy(7);
        let mut random_ids = std::collections::HashSet::new();
        for _ in 0..5 {
            let (p, _) = backend.select_next(&model, &labeled).unwrap().unwrap();
            random_ids.insert(p.id);
        }
        assert!(random_ids.len() > 1, "random selection varies across draws");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dbms_backend_scans_whole_table_per_selection() {
        let (mut backend, tracker, dir) = dbms_backend("scanall", 3000);
        let model = trained_model(&mut backend);
        let labeled = LabeledSet::new();
        let before = tracker.snapshot();
        let (_, info) = backend.select_next(&model, &labeled).unwrap().unwrap();
        assert_eq!(info.examined, Some(3000));
        assert_eq!(
            tracker.delta(&before).stats.bytes_read,
            backend.table().size_bytes(),
            "exhaustive scan reads the full table"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn uei_selection_reads_less_than_dbms_selection() {
        // The core claim, end to end: a UEI iteration touches a fraction
        // of what the DBMS iteration reads.
        let n = 4000;
        let (mut uei, uei_tracker, d1) = uei_backend("cmp1", n);
        let (mut dbms, dbms_tracker, d2) = dbms_backend("cmp2", n);
        let model_u = trained_model(&mut uei);
        let model_d = trained_model(&mut dbms);
        let labeled = LabeledSet::new();

        let before = uei_tracker.snapshot();
        uei.select_next(&model_u, &labeled).unwrap().unwrap();
        let uei_bytes = uei_tracker.delta(&before).stats.bytes_read;

        let before = dbms_tracker.snapshot();
        dbms.select_next(&model_d, &labeled).unwrap().unwrap();
        let dbms_bytes = dbms_tracker.delta(&before).stats.bytes_read;

        assert!(uei_bytes * 3 < dbms_bytes, "UEI read {uei_bytes} B vs DBMS {dbms_bytes} B");
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn both_backends_retrieve_consistent_results() {
        let n = 2000;
        let (mut uei, _, d1) = uei_backend("res1", n);
        let (mut dbms, _, d2) = dbms_backend("res2", n);
        let model = trained_model(&mut uei);
        let from_uei = uei.retrieve_results(&model).unwrap();
        let from_dbms = dbms.retrieve_results(&model).unwrap();
        assert_eq!(from_uei, from_dbms, "same data + same model ⇒ same result set");
        assert!(!from_uei.is_empty());
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn sample_and_fetch_round_trip() {
        for which in 0..2 {
            let (mut backend, dir): (Box<dyn ExplorationBackend>, PathBuf) = if which == 0 {
                let (b, _, d) = uei_backend("rt1", 1000);
                (Box::new(b), d)
            } else {
                let (b, _, d) = dbms_backend("rt2", 1000);
                (Box::new(b), d)
            };
            let mut rng = Rng::new(5);
            let sample = backend.sample_rows(20, &mut rng).unwrap();
            assert_eq!(sample.len(), 20);
            let ids: Vec<u64> = sample.iter().map(|p| p.id.as_u64()).collect();
            let fetched = backend.fetch_rows(&ids).unwrap();
            assert_eq!(fetched.len(), 20);
            let mut fetched_sorted = fetched.clone();
            fetched_sorted.sort_by_key(|p| p.id);
            let mut sample_sorted = sample.clone();
            sample_sorted.sort_by_key(|p| p.id);
            assert_eq!(fetched_sorted, sample_sorted);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}
