//! SDSS-like synthetic data generation.
//!
//! The paper evaluates on 40 GB / 10⁷ tuples of SDSS `PhotoObjAll`,
//! restricted to five numeric attributes: `rowc`, `colc` (CCD pixel
//! coordinates of the detection), `ra`, `dec` (sky coordinates), and
//! `field` (the imaging-run field number). We reproduce the *shape* of
//! that data rather than its bytes:
//!
//! - `rowc`/`colc` are near-uniform over the CCD frame (every detection
//!   lands somewhere on the chip);
//! - `ra`/`dec` are heavily clustered: surveys image stripes and objects
//!   cluster on the sky, so a mixture of Gaussian patches over a uniform
//!   background reproduces the skew that makes grid cells unevenly
//!   populated (what stresses UEI's uncertainty-directed loading);
//! - `field` is a discrete attribute with many repeated values — this is
//!   what gives the inverted `<key, {ids}>` layout real compression.

use uei_types::{DataPoint, Rng, Schema};

/// Configuration of the synthetic SDSS-like generator.
#[derive(Debug, Clone)]
pub struct SynthConfig {
    /// Number of rows to generate.
    pub rows: usize,
    /// Number of Gaussian sky patches for `ra`/`dec`.
    pub sky_clusters: usize,
    /// Fraction of objects drawn from patches (the rest are uniform
    /// background).
    pub cluster_fraction: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig { rows: 10_000, sky_clusters: 12, cluster_fraction: 0.7, seed: 42 }
    }
}

/// Generates an SDSS-like dataset over [`Schema::sdss`] with dense row ids
/// `0..rows`.
pub fn generate_sdss_like(config: &SynthConfig) -> Vec<DataPoint> {
    let schema = Schema::sdss();
    let attrs = schema.attributes();
    let mut rng = Rng::new(config.seed);

    // Sky patches: (ra center, dec center, spread).
    let patches: Vec<(f64, f64, f64)> = (0..config.sky_clusters.max(1))
        .map(|_| (rng.range_f64(10.0, 350.0), rng.range_f64(-60.0, 60.0), rng.range_f64(2.0, 12.0)))
        .collect();

    let mut rows = Vec::with_capacity(config.rows);
    for id in 0..config.rows {
        let rowc = rng.range_f64(attrs[0].min, attrs[0].max);
        let colc = rng.range_f64(attrs[1].min, attrs[1].max);
        let (ra, dec) = if rng.bool(config.cluster_fraction) {
            let &(cra, cdec, spread) = rng.choose(&patches);
            (
                rng.normal(cra, spread).clamp(attrs[2].min, attrs[2].max),
                rng.normal(cdec, spread * 0.5).clamp(attrs[3].min, attrs[3].max),
            )
        } else {
            (rng.range_f64(attrs[2].min, attrs[2].max), rng.range_f64(attrs[3].min, attrs[3].max))
        };
        // Discrete field number: heavy reuse of a limited value set.
        let field = rng.below(1000) as f64;
        rows.push(DataPoint::new(id as u64, vec![rowc, colc, ra, dec, field]));
    }
    rows
}

/// A small uniform dataset over an arbitrary schema — handy for unit tests
/// and quickstarts.
pub fn generate_uniform(schema: &Schema, rows: usize, seed: u64) -> Vec<DataPoint> {
    let mut rng = Rng::new(seed);
    (0..rows)
        .map(|id| {
            let values = schema.attributes().iter().map(|a| rng.range_f64(a.min, a.max)).collect();
            DataPoint::new(id as u64, values)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_requested_rows_with_dense_ids() {
        let rows = generate_sdss_like(&SynthConfig { rows: 5000, ..Default::default() });
        assert_eq!(rows.len(), 5000);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.id.as_u64(), i as u64);
            assert_eq!(r.dims(), 5);
        }
    }

    #[test]
    fn values_respect_schema_domains() {
        let schema = Schema::sdss();
        let space = schema.data_space();
        let rows = generate_sdss_like(&SynthConfig { rows: 10_000, ..Default::default() });
        for r in &rows {
            assert!(space.contains(&r.values).unwrap(), "{:?} outside domain", r.values);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate_sdss_like(&SynthConfig { rows: 100, seed: 7, ..Default::default() });
        let b = generate_sdss_like(&SynthConfig { rows: 100, seed: 7, ..Default::default() });
        let c = generate_sdss_like(&SynthConfig { rows: 100, seed: 8, ..Default::default() });
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn sky_coordinates_are_clustered() {
        // Clustered ra/dec should have lower entropy than uniform: compare
        // the variance of cell occupancy over a coarse ra histogram.
        let rows = generate_sdss_like(&SynthConfig {
            rows: 20_000,
            cluster_fraction: 0.9,
            ..Default::default()
        });
        let mut hist = [0usize; 36];
        for r in &rows {
            let bin = ((r.values[2] / 10.0) as usize).min(35);
            hist[bin] += 1;
        }
        let mean = rows.len() as f64 / 36.0;
        let var: f64 = hist.iter().map(|&c| (c as f64 - mean).powi(2)).sum::<f64>() / 36.0;
        // Uniform occupancy would give variance ≈ mean (Poisson); clusters
        // push it far higher.
        assert!(var > 4.0 * mean, "ra histogram variance {var} vs mean {mean}");
    }

    #[test]
    fn field_attribute_has_many_duplicates() {
        let rows = generate_sdss_like(&SynthConfig { rows: 10_000, ..Default::default() });
        let mut distinct: Vec<u64> = rows.iter().map(|r| r.values[4] as u64).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert!(distinct.len() <= 1000, "field values are drawn from a small set");
        assert!(distinct.len() > 500, "but most of the set is used");
    }

    #[test]
    fn uniform_generator_covers_schema() {
        let schema = Schema::sdss();
        let rows = generate_uniform(&schema, 1000, 3);
        assert_eq!(rows.len(), 1000);
        let space = schema.data_space();
        for r in &rows {
            assert!(space.contains(&r.values).unwrap());
        }
    }
}
