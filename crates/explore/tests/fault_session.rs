//! Acceptance test for the storage fault-tolerance subsystem: with the
//! injector firing on 10 % of chunk reads (transient) and corrupting 1 %,
//! a 50-iteration synthetic exploration session must complete every
//! iteration — zero aborts — absorbing faults through loader retries, the
//! candidate fallback ladder, and (when every candidate fails) pool-served
//! degraded iterations.

use std::sync::Arc;

use uei_explore::backend::UeiBackend;
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, SessionConfig};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_learn::strategy::UncertaintyMeasure;
use uei_storage::fault::{FaultConfig, FaultInjector};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_storage::TempDir;
use uei_types::{Rng, Schema};

#[test]
fn fifty_iterations_survive_transient_and_corrupt_faults() {
    let dir = TempDir::new("fault-session");
    let rows = generate_sdss_like(&SynthConfig { rows: 6000, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 2048 },
        tracker.clone(),
    )
    .unwrap();
    let mut backend_rng = Rng::new(1);
    let mut backend = UeiBackend::new(
        Arc::new(store),
        UeiConfig {
            cells_per_dim: 3,
            // No chunk cache and no prefetcher: every region load pays real
            // reads through the injector, the hardest configuration.
            chunk_cache_bytes: 0,
            prefetch: false,
            ..UeiConfig::default()
        },
        UncertaintyMeasure::LeastConfidence,
        300,
        &mut backend_rng,
    )
    .unwrap();

    let injector = FaultInjector::new(FaultConfig {
        seed: 77,
        transient_prob: 0.10,
        corrupt_prob: 0.01,
        ..FaultConfig::off()
    })
    .unwrap();
    tracker.set_fault_injector(Some(Arc::clone(&injector)));

    let config = SessionConfig {
        max_labels: 52, // 2 bootstrap labels + 50 iterations
        bootstrap_size: 200,
        eval_sample: 300,
        ..SessionConfig::default()
    };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker.clone())
        .run()
        .expect("session must complete despite injected faults");

    assert_eq!(result.traces.len(), 50, "zero aborted iterations");
    assert_eq!(result.labels_used, 52);

    let stats = injector.stats();
    assert!(stats.transient_errors > 0, "injector fired transients: {stats:?}");
    assert!(stats.corruptions > 0, "injector corrupted payloads: {stats:?}");

    let retries: u64 = result.traces.iter().map(|t| t.counters.retries).sum();
    let fallbacks: u64 = result.traces.iter().map(|t| t.counters.fallback_cells).sum();
    let degraded = result.traces.iter().filter(|t| t.counters.degraded).count();
    assert!(retries > 0, "some transient faults were absorbed by retries");
    assert!(fallbacks > 0, "some iterations fell through to lower-ranked cells");
    assert!(degraded > 0, "at least one iteration was served from the pool");

    // Degraded iterations still produced labels and traces like any other.
    for t in &result.traces {
        if t.counters.degraded {
            assert!(t.region_rows.is_none(), "no region was loaded when degraded");
        } else {
            assert!(t.region_rows.is_some());
        }
    }
}

#[test]
fn clean_session_reports_zero_fault_counters() {
    let dir = TempDir::new("clean-session");
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 4096 },
        tracker.clone(),
    )
    .unwrap();
    let mut backend_rng = Rng::new(2);
    let mut backend = UeiBackend::new(
        Arc::new(store),
        UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        200,
        &mut backend_rng,
    )
    .unwrap();
    let config = SessionConfig {
        max_labels: 12,
        bootstrap_size: 150,
        eval_sample: 200,
        ..SessionConfig::default()
    };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
    assert!(result.traces.iter().all(|t| t.counters.retries == 0));
    assert!(result.traces.iter().all(|t| t.counters.fallback_cells == 0));
    assert!(result.traces.iter().all(|t| !t.counters.degraded));
}
