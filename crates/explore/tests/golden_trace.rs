//! Pins the exact iteration sequence of a fixed-seed UEI exploration
//! session. The kd-tree layout work (flat SoA storage, bucketed leaves,
//! blocked distance kernels) promises *bit-identical* query results; this
//! golden trace was captured on the pre-change implementation, so any
//! layout change that perturbs a single nearest-neighbour result — and
//! with it one region selection — fails loudly here.

use std::sync::Arc;

use uei_explore::backend::UeiBackend;
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, SessionConfig};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_learn::strategy::UncertaintyMeasure;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_storage::TempDir;
use uei_types::{Rng, Schema};

/// Captured from the `Vec<Vec<f64>>` recursive kd-tree implementation at
/// seed state (dataset seed via `SynthConfig::default`, region rng 13,
/// backend rng 1, session seed 42). One entry per iteration:
/// `iteration:labels:label_positive:region_rows`.
const GOLDEN: &[&str] = &[
    "1:2:0:7",
    "2:3:0:4",
    "3:4:0:4",
    "4:5:0:22",
    "5:6:0:27",
    "6:7:0:3",
    "7:8:0:20",
    "8:9:1:29",
    "9:10:1:24",
    "10:11:0:30",
    "11:12:0:4",
    "12:13:1:4",
    "13:14:0:6",
    "14:15:0:6",
    "15:16:0:30",
    "16:17:0:2",
    "17:18:1:2",
    "18:19:0:20",
    "19:20:0:4",
    "20:21:0:4",
    "21:22:0:4",
    "22:23:0:4",
    "23:24:1:4",
];

/// Runs the pinned fixed-seed session with the given index-plane shard
/// count and returns its `iteration:labels:label_positive:region_rows`
/// fingerprint.
fn run_pinned_session(tag: &str, shards: usize) -> Vec<String> {
    let dir = TempDir::new(&format!("golden-trace-{tag}"));
    let rows = generate_sdss_like(&SynthConfig { rows: 4000, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker.clone(),
    )
    .unwrap();
    let mut backend_rng = Rng::new(1);
    let mut backend = UeiBackend::new(
        Arc::new(store),
        UeiConfig { cells_per_dim: 3, shards, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        300,
        &mut backend_rng,
    )
    .unwrap();
    let config = SessionConfig {
        max_labels: 25,
        bootstrap_size: 200,
        eval_sample: 400,
        ..SessionConfig::default()
    };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();

    result
        .traces
        .iter()
        .map(|t| {
            format!(
                "{}:{}:{}:{}",
                t.iteration,
                t.labels,
                u8::from(t.label_positive),
                t.region_rows.unwrap_or(0)
            )
        })
        .collect()
}

#[test]
fn fixed_seed_session_trace_is_pinned() {
    let fingerprint = run_pinned_session("auto", 0);
    assert_eq!(fingerprint, GOLDEN, "fixed-seed session diverged from the pinned pre-change trace");
}

/// The same pinned trace must survive an explicit shard count: splitting
/// the index plane into four shards changes only who computes each score
/// and how the top-θ ranking is merged, never the selection itself.
#[test]
fn four_shard_session_reproduces_the_pinned_trace() {
    let fingerprint = run_pinned_session("sharded", 4);
    assert_eq!(fingerprint, GOLDEN, "four-shard session diverged from the pinned trace");
}
