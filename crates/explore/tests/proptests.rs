//! Property-based tests for the exploration layer: the Eq. 4 oracle, the
//! workload generator, and synthetic-data invariants.

use proptest::prelude::*;
use uei_explore::oracle::Oracle;
use uei_explore::synth::{generate_sdss_like, generate_uniform, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_types::{DataPoint, Rng, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_labels_equal_region_membership_everywhere(
        seed in any::<u64>(),
        fraction in 0.005f64..0.1,
    ) {
        let rows = generate_sdss_like(&SynthConfig { rows: 1500, seed, ..Default::default() });
        let mut rng = Rng::new(seed ^ 1);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        let oracle = Oracle::new(target);
        for row in &rows {
            let inside = oracle.region().contains(&row.values).unwrap();
            prop_assert_eq!(oracle.label(row).unwrap().is_positive(), inside);
            prop_assert_eq!(oracle.is_relevant_id(row.id.as_u64()), inside);
            // Eq. 4 and membership agree (away from exact boundary).
            let d = oracle.relative_distance(&row.values).unwrap();
            if (d - 1.0).abs() > 1e-9 {
                prop_assert_eq!(inside, d < 1.0);
            }
        }
    }

    #[test]
    fn target_regions_are_never_empty_and_centered_on_data(
        seed in any::<u64>(),
        fraction in 0.002f64..0.05,
    ) {
        let rows = generate_uniform(&Schema::sdss(), 2000, seed);
        let mut rng = Rng::new(seed ^ 2);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        prop_assert!(!target.relevant_ids.is_empty());
        prop_assert!(target.region.contains(&target.center).unwrap());
        // Relevant ids ascend and are valid row ids.
        for w in target.relevant_ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(target.relevant_ids.iter().all(|&id| id < 2000));
        // Achieved fraction is in a sane band around the request (uniform
        // data converges well; wide tolerance for small targets).
        prop_assert!(target.fraction > 0.0 && target.fraction < fraction * 4.0 + 0.01);
    }

    #[test]
    fn synthetic_rows_are_deterministic_and_in_domain(
        seed in any::<u64>(),
        n in 1usize..500,
    ) {
        let config = SynthConfig { rows: n, seed, ..Default::default() };
        let a = generate_sdss_like(&config);
        let b = generate_sdss_like(&config);
        prop_assert_eq!(&a, &b);
        let space = Schema::sdss().data_space();
        for (i, row) in a.iter().enumerate() {
            prop_assert_eq!(row.id.as_u64(), i as u64);
            prop_assert!(space.contains(&row.values).unwrap());
        }
    }

    #[test]
    fn oracle_confidence_is_bounded_and_inverse_to_distance(
        seed in any::<u64>(),
        probes in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5), 1..20),
    ) {
        let rows = generate_uniform(&Schema::sdss(), 800, seed);
        let mut rng = Rng::new(seed ^ 3);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
        let oracle = Oracle::new(target);
        let space = Schema::sdss();
        for unit in &probes {
            let point: Vec<f64> = space
                .attributes()
                .iter()
                .zip(unit)
                .map(|(a, t)| a.min + t * a.width())
                .collect();
            let c = oracle.confidence(&point).unwrap();
            prop_assert!((0.0..=1.0).contains(&c) || !c.is_nan());
            let d = oracle.relative_distance(&point).unwrap();
            if d <= 1.0 {
                prop_assert!(c >= 0.5 - 1e-9, "inside ⇒ confidence ≥ 0.5, got {c}");
            } else {
                prop_assert!(c < 0.5 + 1e-9, "outside ⇒ confidence < 0.5, got {c}");
            }
        }
    }
}

/// Incremental rescoring must never change *what gets selected*: for every
/// estimator kind — including the committee, which falls back to full
/// rescoring through the conservative [`uei_learn::ModelDelta::Global`]
/// contract — the sequence of chosen cells and examples over a long
/// session must be bit-identical to a twin session that rescores every
/// index point from scratch each iteration. Retraining only every third
/// label lets labels accrue between retrains, exercising the
/// training-length watermark rather than the trivial
/// one-label-per-retrain case.
mod incremental_vs_full {
    use super::*;
    use proptest::TestCaseError;
    use std::sync::Arc;
    use uei_explore::backend::{ExplorationBackend, UeiBackend};
    use uei_explore::synth::generate_sdss_like;
    use uei_index::config::UeiConfig;
    use uei_learn::committee::Committee;
    use uei_learn::dataset::LabeledSet;
    use uei_learn::strategy::UncertaintyMeasure;
    use uei_learn::{Classifier, EstimatorKind};
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};
    use uei_types::Label;

    const ITERATIONS: usize = 32;

    fn teacher(p: &DataPoint) -> Label {
        // Arbitrary but consistent: ra < 180 is positive — splits SDSS-like
        // data roughly in half, so every estimator trains cleanly.
        Label::from_bool(p.values[2] < 180.0)
    }

    type Trainer = Box<dyn Fn(&[(Vec<f64>, Label)]) -> Box<dyn Classifier>>;

    fn trainers() -> Vec<(&'static str, bool, Trainer)> {
        // (name, expects kNN-family locality pruning, trainer)
        vec![
            ("dwknn", true, Box::new(|ex: &[_]| EstimatorKind::Dwknn { k: 3 }.train(ex).unwrap())),
            ("knn", true, Box::new(|ex: &[_]| EstimatorKind::Knn { k: 3 }.train(ex).unwrap())),
            (
                "naive-bayes",
                false,
                Box::new(|ex: &[_]| EstimatorKind::NaiveBayes.train(ex).unwrap()),
            ),
            (
                "linear-svm",
                false,
                Box::new(|ex: &[_]| {
                    EstimatorKind::LinearSvm { epochs: 30, lambda: 0.01 }.train(ex).unwrap()
                }),
            ),
            (
                "committee",
                false,
                Box::new(|ex: &[_]| {
                    Box::new(Committee::train(EstimatorKind::Dwknn { k: 3 }, 3, ex, 7).unwrap())
                }),
            ),
        ]
    }

    pub(super) fn check(seed: u64) -> Result<(), TestCaseError> {
        let rows = generate_sdss_like(&SynthConfig { rows: 2000, seed, ..Default::default() });
        let dir = std::env::temp_dir().join(format!(
            "uei-prop-rescore-{seed}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = Arc::new(
            ColumnStore::create(
                &dir,
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker,
            )
            .unwrap(),
        );

        for (name, prunes, train) in &trainers() {
            let mk_backend = |incremental: bool| {
                let mut rng = Rng::new(seed ^ 0xA5);
                UeiBackend::new(
                    store.clone(),
                    UeiConfig {
                        cells_per_dim: 3,
                        incremental_rescore: incremental,
                        ..UeiConfig::default()
                    },
                    UncertaintyMeasure::LeastConfidence,
                    250,
                    &mut rng,
                )
                .unwrap()
            };
            let mut inc = mk_backend(true);
            let mut full = mk_backend(false);

            // Teacher-labeled bootstrap: the first three rows of each class.
            let mut labeled = LabeledSet::new();
            let (mut pos, mut neg) = (0usize, 0usize);
            for p in &rows {
                if pos >= 3 && neg >= 3 {
                    break;
                }
                let label = teacher(p);
                let quota = if label.is_positive() { &mut pos } else { &mut neg };
                if *quota >= 3 {
                    continue;
                }
                *quota += 1;
                labeled.add(p.clone(), label).unwrap();
                inc.mark_labeled(p.id);
                full.mark_labeled(p.id);
            }

            let mut model = train(&labeled.training_data());
            for it in 0..ITERATIONS {
                if it % 3 == 0 {
                    model = train(&labeled.training_data());
                }
                let (pa, ia) = inc
                    .select_next(model.as_ref(), &labeled)
                    .unwrap()
                    .expect("incremental pool non-empty");
                let (pb, ib) = full
                    .select_next(model.as_ref(), &labeled)
                    .unwrap()
                    .expect("full pool non-empty");
                prop_assert_eq!(
                    ia.cell,
                    ib.cell,
                    "{}: iteration {} chose different cells",
                    name,
                    it
                );
                prop_assert_eq!(
                    pa.id,
                    pb.id,
                    "{}: iteration {} chose different examples",
                    name,
                    it
                );
                prop_assert_eq!(
                    ib.counters.points_cached,
                    0,
                    "{}: full mode must never serve cached scores",
                    name
                );
                let label = teacher(&pa);
                labeled.add(pa.clone(), label).unwrap();
                inc.mark_labeled(pa.id);
                full.mark_labeled(pb.id);
            }

            let counters = inc.index().rescore_counters();
            if *prunes {
                prop_assert!(
                    counters.points_cached > 0,
                    "{}: a kNN-family session must actually prune (counters {:?})",
                    name,
                    counters
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }
}

proptest! {
    // Real storage + five estimators per case: keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn incremental_rescoring_selects_identical_cells_for_every_estimator(seed in 0u64..1_000) {
        incremental_vs_full::check(seed)?;
    }
}

/// The sharded index plane promises that the shard count is invisible to
/// exploration: partitioning the grid cells changes *where* scores live
/// and *who* rescored them, never which cell ranks first or which example
/// is selected. For every estimator kind, a fixed-seed session must
/// produce bit-identical [`IterationTrace`] sequences at 1, 2, and 8
/// shards — every field except wall-clock time (noise) and
/// `shards_touched` (inherently shard-count-dependent: a full pass touches
/// all shards, however many there are).
///
/// [`IterationTrace`]: uei_explore::session::IterationTrace
mod shard_invariance {
    use super::*;
    use proptest::TestCaseError;
    use std::sync::Arc;
    use uei_explore::backend::UeiBackend;
    use uei_explore::oracle::Oracle;
    use uei_explore::session::{ExplorationSession, IterationTrace, SessionConfig};
    use uei_index::config::UeiConfig;
    use uei_learn::strategy::UncertaintyMeasure;
    use uei_learn::EstimatorKind;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};

    const ESTIMATORS: &[(&str, EstimatorKind)] = &[
        ("dwknn", EstimatorKind::Dwknn { k: 3 }),
        ("knn", EstimatorKind::Knn { k: 3 }),
        ("naive-bayes", EstimatorKind::NaiveBayes),
        ("linear-svm", EstimatorKind::LinearSvm { epochs: 30, lambda: 0.01 }),
    ];

    /// The trace minus the two fields that legitimately vary, serialized
    /// so the comparison covers every remaining bit.
    fn canon(t: &IterationTrace) -> String {
        let mut t = t.clone();
        t.response_wall_ms = 0.0;
        t.counters.shards_touched = 0;
        serde_json::to_string(&t).expect("traces serialize")
    }

    pub(super) fn check(seed: u64) -> Result<(), TestCaseError> {
        let rows = generate_sdss_like(&SynthConfig { rows: 2000, seed, ..Default::default() });
        let mut rng = Rng::new(seed ^ 0x51);
        let target =
            generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
        let oracle = Oracle::new(target);

        for (name, estimator) in ESTIMATORS {
            let run = |shards: usize| -> Vec<IterationTrace> {
                let dir = std::env::temp_dir().join(format!(
                    "uei-prop-shard-{seed}-{name}-{shards}-{}-{:?}",
                    std::process::id(),
                    std::thread::current().id()
                ));
                let _ = std::fs::remove_dir_all(&dir);
                let tracker = DiskTracker::new(IoProfile::instant());
                let store = Arc::new(
                    ColumnStore::create(
                        &dir,
                        Schema::sdss(),
                        &rows,
                        StoreConfig { chunk_target_bytes: 8192 },
                        tracker.clone(),
                    )
                    .unwrap(),
                );
                let mut rng = Rng::new(seed ^ 0x52);
                let mut backend = UeiBackend::new(
                    store,
                    UeiConfig { cells_per_dim: 3, shards, ..UeiConfig::default() },
                    UncertaintyMeasure::LeastConfidence,
                    250,
                    &mut rng,
                )
                .unwrap();
                let config = SessionConfig {
                    estimator: *estimator,
                    max_labels: 12,
                    bootstrap_size: 150,
                    eval_sample: 200,
                    ..SessionConfig::default()
                };
                let result =
                    ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
                std::fs::remove_dir_all(&dir).ok();
                result.traces
            };

            let reference = run(1);
            prop_assert!(!reference.is_empty(), "{name}: session recorded no iterations");
            let reference: Vec<String> = reference.iter().map(canon).collect();
            for shards in [2usize, 8] {
                let sharded: Vec<String> = run(shards).iter().map(canon).collect();
                prop_assert_eq!(
                    &reference,
                    &sharded,
                    "{}: traces diverged between 1 and {} shards",
                    name,
                    shards
                );
            }
        }
        Ok(())
    }
}

proptest! {
    // Four estimators x three shard counts with real storage per case:
    // keep the case count minimal.
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn traces_are_bit_identical_at_any_shard_count(seed in 0u64..1_000) {
        shard_invariance::check(seed)?;
    }
}

/// Session determinism over random seeds, with real storage; kept as one
/// deterministic case per run to stay fast.
#[test]
fn sessions_replay_bit_for_bit() {
    use std::sync::Arc;
    use uei_explore::backend::UeiBackend;
    use uei_explore::session::{ExplorationSession, SessionConfig};
    use uei_index::config::UeiConfig;
    use uei_learn::strategy::UncertaintyMeasure;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};

    let rows = generate_sdss_like(&SynthConfig { rows: 3000, seed: 5, ..Default::default() });
    let mut rng = Rng::new(77);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let run = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "uei-prop-replay-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = Arc::new(
            ColumnStore::create(
                &dir,
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap(),
        );
        let mut rng = Rng::new(3);
        let mut backend = UeiBackend::new(
            store,
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            300,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig { max_labels: 20, eval_sample: 300, ..SessionConfig::default() };
        let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        result
    };

    let a = run("a");
    let b = run("b");
    assert_eq!(a.final_f_measure, b.final_f_measure);
    assert_eq!(a.labels_used, b.labels_used);
    let fa: Vec<Option<f64>> = a.traces.iter().map(|t| t.f_measure).collect();
    let fb: Vec<Option<f64>> = b.traces.iter().map(|t| t.f_measure).collect();
    assert_eq!(fa, fb, "identical seeds replay identical sessions");
}

/// A DataPoint convenience check used by several strategies above.
#[test]
fn probe_points_have_expected_dims() {
    let p = DataPoint::new(0u64, vec![1.0; 5]);
    assert_eq!(p.dims(), Schema::sdss().dims());
}
