//! Property-based tests for the exploration layer: the Eq. 4 oracle, the
//! workload generator, and synthetic-data invariants.

use proptest::prelude::*;
use uei_explore::oracle::Oracle;
use uei_explore::synth::{generate_sdss_like, generate_uniform, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_types::{DataPoint, Rng, Schema};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn oracle_labels_equal_region_membership_everywhere(
        seed in any::<u64>(),
        fraction in 0.005f64..0.1,
    ) {
        let rows = generate_sdss_like(&SynthConfig { rows: 1500, seed, ..Default::default() });
        let mut rng = Rng::new(seed ^ 1);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        let oracle = Oracle::new(target);
        for row in &rows {
            let inside = oracle.region().contains(&row.values).unwrap();
            prop_assert_eq!(oracle.label(row).unwrap().is_positive(), inside);
            prop_assert_eq!(oracle.is_relevant_id(row.id.as_u64()), inside);
            // Eq. 4 and membership agree (away from exact boundary).
            let d = oracle.relative_distance(&row.values).unwrap();
            if (d - 1.0).abs() > 1e-9 {
                prop_assert_eq!(inside, d < 1.0);
            }
        }
    }

    #[test]
    fn target_regions_are_never_empty_and_centered_on_data(
        seed in any::<u64>(),
        fraction in 0.002f64..0.05,
    ) {
        let rows = generate_uniform(&Schema::sdss(), 2000, seed);
        let mut rng = Rng::new(seed ^ 2);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), fraction, &mut rng).unwrap();
        prop_assert!(!target.relevant_ids.is_empty());
        prop_assert!(target.region.contains(&target.center).unwrap());
        // Relevant ids ascend and are valid row ids.
        for w in target.relevant_ids.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
        prop_assert!(target.relevant_ids.iter().all(|&id| id < 2000));
        // Achieved fraction is in a sane band around the request (uniform
        // data converges well; wide tolerance for small targets).
        prop_assert!(target.fraction > 0.0 && target.fraction < fraction * 4.0 + 0.01);
    }

    #[test]
    fn synthetic_rows_are_deterministic_and_in_domain(
        seed in any::<u64>(),
        n in 1usize..500,
    ) {
        let config = SynthConfig { rows: n, seed, ..Default::default() };
        let a = generate_sdss_like(&config);
        let b = generate_sdss_like(&config);
        prop_assert_eq!(&a, &b);
        let space = Schema::sdss().data_space();
        for (i, row) in a.iter().enumerate() {
            prop_assert_eq!(row.id.as_u64(), i as u64);
            prop_assert!(space.contains(&row.values).unwrap());
        }
    }

    #[test]
    fn oracle_confidence_is_bounded_and_inverse_to_distance(
        seed in any::<u64>(),
        probes in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 5), 1..20),
    ) {
        let rows = generate_uniform(&Schema::sdss(), 800, seed);
        let mut rng = Rng::new(seed ^ 3);
        let target = generate_target_region_fraction(
            &rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
        let oracle = Oracle::new(target);
        let space = Schema::sdss();
        for unit in &probes {
            let point: Vec<f64> = space
                .attributes()
                .iter()
                .zip(unit)
                .map(|(a, t)| a.min + t * a.width())
                .collect();
            let c = oracle.confidence(&point).unwrap();
            prop_assert!((0.0..=1.0).contains(&c) || !c.is_nan());
            let d = oracle.relative_distance(&point).unwrap();
            if d <= 1.0 {
                prop_assert!(c >= 0.5 - 1e-9, "inside ⇒ confidence ≥ 0.5, got {c}");
            } else {
                prop_assert!(c < 0.5 + 1e-9, "outside ⇒ confidence < 0.5, got {c}");
            }
        }
    }
}

/// Session determinism over random seeds, with real storage; kept as one
/// deterministic case per run to stay fast.
#[test]
fn sessions_replay_bit_for_bit() {
    use std::sync::Arc;
    use uei_explore::backend::UeiBackend;
    use uei_explore::session::{ExplorationSession, SessionConfig};
    use uei_index::config::UeiConfig;
    use uei_learn::strategy::UncertaintyMeasure;
    use uei_storage::io::{DiskTracker, IoProfile};
    use uei_storage::store::{ColumnStore, StoreConfig};

    let rows = generate_sdss_like(&SynthConfig { rows: 3000, seed: 5, ..Default::default() });
    let mut rng = Rng::new(77);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let run = |tag: &str| {
        let dir = std::env::temp_dir().join(format!(
            "uei-prop-replay-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = Arc::new(
            ColumnStore::create(
                &dir,
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 8192 },
                tracker.clone(),
            )
            .unwrap(),
        );
        let mut rng = Rng::new(3);
        let mut backend = UeiBackend::new(
            store,
            UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            300,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig { max_labels: 20, eval_sample: 300, ..SessionConfig::default() };
        let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        result
    };

    let a = run("a");
    let b = run("b");
    assert_eq!(a.final_f_measure, b.final_f_measure);
    assert_eq!(a.labels_used, b.labels_used);
    let fa: Vec<Option<f64>> = a.traces.iter().map(|t| t.f_measure).collect();
    let fb: Vec<Option<f64>> = b.traces.iter().map(|t| t.f_measure).collect();
    assert_eq!(fa, fb, "identical seeds replay identical sessions");
}

/// A DataPoint convenience check used by several strategies above.
#[test]
fn probe_points_have_expected_dims() {
    let p = DataPoint::new(0u64, vec![1.0; 5]);
    assert_eq!(p.dims(), Schema::sdss().dims());
}
