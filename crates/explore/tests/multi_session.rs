//! Determinism of concurrent multi-session exploration (DESIGN.md §10).
//!
//! N sessions with fixed seeds over one shared `EngineCore` must produce
//! **bit-identical** per-iteration traces whether they run sequentially or
//! concurrently on N threads: every modeled quantity (virtual response
//! time, bytes, seeks, cache counters, F-measures, selections) is decided
//! by per-session state — only wall-clock times may differ. The shared
//! cache's byte accounting must also stay exact under concurrent fills.
//!
//! Prefetch and fault injection stay off here: the prefetcher races the
//! foreground by design (a prefetched region legitimately changes
//! `prefetched`/`virtual_time` fields), so determinism is only promised
//! without it.

use std::sync::Arc;

use uei_explore::multi::{run_sessions, run_sessions_concurrently, SessionSpec};
use uei_explore::oracle::Oracle;
use uei_explore::session::{IterationTrace, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Rng, Schema};

const SESSIONS: usize = 4;

fn build_engine(dir: &std::path::Path, rows: &[uei_types::DataPoint]) -> EngineCore {
    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = ColumnStore::create(
        dir,
        Schema::sdss(),
        rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .unwrap();
    EngineCore::new(
        Arc::new(store),
        UeiConfig {
            cells_per_dim: 3,
            // Small budget so eviction/bypass paths are exercised, not just
            // all-resident hits.
            chunk_cache_bytes: 256 << 10,
            prefetch: false,
            ..UeiConfig::default()
        },
    )
    .unwrap()
}

fn specs() -> Vec<SessionSpec> {
    (0..SESSIONS as u64)
        .map(|i| SessionSpec {
            session: SessionConfig {
                max_labels: 12,
                bootstrap_size: 120,
                eval_sample: 200,
                seed: 1000 + i,
                ..SessionConfig::default()
            },
            sample_seed: 2000 + i,
            gamma: 150,
            journal_dir: None,
            postmortem_dir: None,
        })
        .collect()
}

/// Everything in a trace except wall-clock time, which legitimately varies
/// across runs and threads.
fn modeled_fields(t: &IterationTrace) -> impl std::fmt::Debug + PartialEq {
    (
        (
            t.iteration,
            t.labels,
            t.f_measure.map(f64::to_bits),
            t.response_virtual_ms.to_bits(),
            t.bytes_read,
            t.seeks,
            t.label_positive,
        ),
        (
            t.region_rows,
            t.prefetched,
            t.counters.cache_hits,
            t.counters.cache_misses,
            t.counters.cache_evictions,
            t.counters.cache_bypasses,
            t.counters.prefetch_bytes_read,
            t.counters.retries,
            t.counters.fallback_cells,
            t.counters.degraded,
            t.examined,
        ),
    )
}

fn assert_bit_identical(seq: &[SessionResult], conc: &[SessionResult]) {
    assert_eq!(seq.len(), conc.len());
    for (i, (a, b)) in seq.iter().zip(conc).enumerate() {
        assert_eq!(a.labels_used, b.labels_used, "session {i}: labels_used");
        assert_eq!(
            a.final_f_measure.to_bits(),
            b.final_f_measure.to_bits(),
            "session {i}: final F-measure"
        );
        assert_eq!(a.traces.len(), b.traces.len(), "session {i}: trace count");
        for (j, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
            assert_eq!(
                modeled_fields(ta),
                modeled_fields(tb),
                "session {i}, iteration {j}: modeled trace fields diverged"
            );
        }
    }
}

#[test]
fn concurrent_sessions_are_bit_identical_to_sequential() {
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    // Separate store directories so the sequential baseline cannot warm
    // anything for the concurrent run.
    let d1 = uei_storage::TempDir::new("ms-seq");
    let d2 = uei_storage::TempDir::new("ms-conc");
    let engine_seq = build_engine(d1.path(), &rows);
    let engine_conc = build_engine(d2.path(), &rows);

    let specs = specs();
    let seq = run_sessions(&engine_seq, &oracle, &specs).unwrap();
    let conc = run_sessions_concurrently(&engine_conc, &oracle, &specs).unwrap();

    assert_eq!(engine_conc.sessions_opened(), SESSIONS as u64);
    assert_bit_identical(&seq, &conc);
    assert!(seq.iter().all(|r| !r.traces.is_empty()));
}

mod score_cache_independence {
    use super::*;
    use uei_explore::backend::{ExplorationBackend, UeiBackend};
    use uei_learn::dataset::LabeledSet;
    use uei_learn::EstimatorKind;
    use uei_types::{DataPoint, Label};

    fn teacher(p: &DataPoint) -> Label {
        Label::from_bool(p.values[2] < 180.0)
    }

    pub(super) fn open_driver(
        engine: &EngineCore,
        sample_seed: u64,
        rows: &[DataPoint],
    ) -> (UeiBackend, LabeledSet) {
        let mut rng = Rng::new(sample_seed);
        let mut backend = UeiBackend::from_engine(engine, 150, &mut rng).unwrap();
        let mut labeled = LabeledSet::new();
        let (mut pos, mut neg) = (0usize, 0usize);
        for p in rows {
            if pos >= 3 && neg >= 3 {
                break;
            }
            let label = teacher(p);
            let quota = if label.is_positive() { &mut pos } else { &mut neg };
            if *quota >= 3 {
                continue;
            }
            *quota += 1;
            labeled.add(p.clone(), label).unwrap();
            backend.mark_labeled(p.id);
        }
        (backend, labeled)
    }

    /// One labeling iteration: retrain on the session's own labeled set,
    /// select, label, fold in. Returns the selection for comparison.
    pub(super) fn step(backend: &mut UeiBackend, labeled: &mut LabeledSet) -> (Option<usize>, u64) {
        let model = EstimatorKind::Dwknn { k: 3 }.train(&labeled.training_data()).unwrap();
        let (point, info) = backend.select_next(model.as_ref(), labeled).unwrap().unwrap();
        let picked = (info.cell, point.id.as_u64());
        let label = teacher(&point);
        labeled.add(point.clone(), label).unwrap();
        backend.mark_labeled(point.id);
        picked
    }
}

/// Two sessions of one engine keep fully independent score caches: a
/// session's selections, rescore counters, and cache version are
/// bit-identical whether a second session labels away concurrently or the
/// session runs alone. (`EngineCore::open_session` clones the index-point
/// template, so each session carries its own cached scores, influence
/// radii, and model version.)
#[test]
fn per_session_score_caches_are_independent() {
    use score_cache_independence::{open_driver, step};

    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let d1 = uei_storage::TempDir::new("ms-cache-solo");
    let d2 = uei_storage::TempDir::new("ms-cache-pair");
    let engine_solo = build_engine(d1.path(), &rows);
    let engine_pair = build_engine(d2.path(), &rows);
    const A_STEPS: usize = 8;
    const B_STEPS: usize = 5;

    // Baseline: session A alone.
    let (mut a_solo, mut a_solo_labeled) = open_driver(&engine_solo, 2024, &rows);
    let solo_picks: Vec<_> = (0..A_STEPS).map(|_| step(&mut a_solo, &mut a_solo_labeled)).collect();

    // Same session A, now interleaved with an independently labeling B.
    let (mut a, mut a_labeled) = open_driver(&engine_pair, 2024, &rows);
    let (mut b, mut b_labeled) = open_driver(&engine_pair, 9090, &rows);
    let mut pair_picks = Vec::new();
    for i in 0..A_STEPS {
        pair_picks.push(step(&mut a, &mut a_labeled));
        if i < B_STEPS {
            step(&mut b, &mut b_labeled);
        }
    }

    assert_eq!(solo_picks, pair_picks, "B's labeling leaked into A's selections");
    assert_eq!(
        a_solo.index().rescore_counters(),
        a.index().rescore_counters(),
        "B's rescoring leaked into A's score cache"
    );
    assert_eq!(
        a_solo.index().points().model_version(),
        a.index().points().model_version(),
        "cache versions diverged between solo and interleaved runs"
    );

    // B really did advance its own, separate cache.
    let b_counters = b.index().rescore_counters();
    assert!(b_counters.points_rescored > 0, "B never rescored");
    assert_eq!(b.index().points().model_version(), B_STEPS as u64);
    assert_eq!(a.index().points().model_version(), A_STEPS as u64);
    // Every pass accounts for every index point, in both sessions.
    let cells = a.index().grid().num_cells() as u64;
    let a_counters = a.index().rescore_counters();
    assert_eq!(a_counters.points_rescored + a_counters.points_cached, A_STEPS as u64 * cells);
    assert_eq!(b_counters.points_rescored + b_counters.points_cached, B_STEPS as u64 * cells);
}

#[test]
fn shared_cache_byte_accounting_stays_exact_under_concurrency() {
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let mut rng = Rng::new(17);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let dir = uei_storage::TempDir::new("ms-bytes");
    let engine = build_engine(dir.path(), &rows);
    run_sessions_concurrently(&engine, &oracle, &specs()).unwrap();

    let cache = engine.shared_cache().expect("engine built with shared cache");
    // Recompute the exact expected occupancy from the resident chunks: the
    // cache's internal ledger must equal the sum of its residents' sizes
    // and respect the budget, even after four threads filled and evicted
    // concurrently.
    let mut resident_bytes = 0usize;
    let mut resident_chunks = 0usize;
    for meta in engine.store().manifest().dims.iter().flatten() {
        if let Some(chunk) = cache.get_if_resident(meta.id()) {
            resident_bytes += uei_storage::approx_chunk_bytes(&chunk);
            resident_chunks += 1;
        }
    }
    assert_eq!(cache.len(), resident_chunks, "resident-chunk count drifted");
    assert_eq!(
        cache.used_bytes(),
        resident_bytes,
        "cache used_bytes ledger drifted from the resident set"
    );
    assert!(cache.used_bytes() <= cache.budget_bytes(), "budget overrun");
    let agg = engine.cache_stats();
    assert!(agg.hits + agg.misses > 0, "cache saw traffic");
}
