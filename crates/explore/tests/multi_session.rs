//! Determinism of concurrent multi-session exploration (DESIGN.md §10).
//!
//! N sessions with fixed seeds over one shared `EngineCore` must produce
//! **bit-identical** per-iteration traces whether they run sequentially or
//! concurrently on N threads: every modeled quantity (virtual response
//! time, bytes, seeks, cache counters, F-measures, selections) is decided
//! by per-session state — only wall-clock times may differ. The shared
//! cache's byte accounting must also stay exact under concurrent fills.
//!
//! Prefetch and fault injection stay off here: the prefetcher races the
//! foreground by design (a prefetched region legitimately changes
//! `prefetched`/`virtual_time` fields), so determinism is only promised
//! without it.

use std::sync::Arc;

use uei_explore::multi::{run_sessions, run_sessions_concurrently, SessionSpec};
use uei_explore::oracle::Oracle;
use uei_explore::session::{IterationTrace, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{Rng, Schema};

const SESSIONS: usize = 4;

fn build_engine(dir: &std::path::Path, rows: &[uei_types::DataPoint]) -> EngineCore {
    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = ColumnStore::create(
        dir,
        Schema::sdss(),
        rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .unwrap();
    EngineCore::new(
        Arc::new(store),
        UeiConfig {
            cells_per_dim: 3,
            // Small budget so eviction/bypass paths are exercised, not just
            // all-resident hits.
            chunk_cache_bytes: 256 << 10,
            prefetch: false,
            ..UeiConfig::default()
        },
    )
    .unwrap()
}

fn specs() -> Vec<SessionSpec> {
    (0..SESSIONS as u64)
        .map(|i| SessionSpec {
            session: SessionConfig {
                max_labels: 12,
                bootstrap_size: 120,
                eval_sample: 200,
                seed: 1000 + i,
                ..SessionConfig::default()
            },
            sample_seed: 2000 + i,
            gamma: 150,
        })
        .collect()
}

/// Everything in a trace except wall-clock time, which legitimately varies
/// across runs and threads.
fn modeled_fields(t: &IterationTrace) -> impl std::fmt::Debug + PartialEq {
    (
        (
            t.iteration,
            t.labels,
            t.f_measure.map(f64::to_bits),
            t.response_virtual_ms.to_bits(),
            t.bytes_read,
            t.seeks,
            t.label_positive,
        ),
        (
            t.region_rows,
            t.prefetched,
            t.cache_hits,
            t.cache_misses,
            t.cache_evictions,
            t.cache_bypasses,
            t.prefetch_bytes_read,
            t.retries,
            t.fallback_cells,
            t.degraded,
            t.examined,
        ),
    )
}

fn assert_bit_identical(seq: &[SessionResult], conc: &[SessionResult]) {
    assert_eq!(seq.len(), conc.len());
    for (i, (a, b)) in seq.iter().zip(conc).enumerate() {
        assert_eq!(a.labels_used, b.labels_used, "session {i}: labels_used");
        assert_eq!(
            a.final_f_measure.to_bits(),
            b.final_f_measure.to_bits(),
            "session {i}: final F-measure"
        );
        assert_eq!(a.traces.len(), b.traces.len(), "session {i}: trace count");
        for (j, (ta, tb)) in a.traces.iter().zip(&b.traces).enumerate() {
            assert_eq!(
                modeled_fields(ta),
                modeled_fields(tb),
                "session {i}, iteration {j}: modeled trace fields diverged"
            );
        }
    }
}

#[test]
fn concurrent_sessions_are_bit_identical_to_sequential() {
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    // Separate store directories so the sequential baseline cannot warm
    // anything for the concurrent run.
    let d1 = uei_storage::TempDir::new("ms-seq");
    let d2 = uei_storage::TempDir::new("ms-conc");
    let engine_seq = build_engine(d1.path(), &rows);
    let engine_conc = build_engine(d2.path(), &rows);

    let specs = specs();
    let seq = run_sessions(&engine_seq, &oracle, &specs).unwrap();
    let conc = run_sessions_concurrently(&engine_conc, &oracle, &specs).unwrap();

    assert_eq!(engine_conc.sessions_opened(), SESSIONS as u64);
    assert_bit_identical(&seq, &conc);
    assert!(seq.iter().all(|r| !r.traces.is_empty()));
}

#[test]
fn shared_cache_byte_accounting_stays_exact_under_concurrency() {
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let mut rng = Rng::new(17);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    let oracle = Oracle::new(target);

    let dir = uei_storage::TempDir::new("ms-bytes");
    let engine = build_engine(dir.path(), &rows);
    run_sessions_concurrently(&engine, &oracle, &specs()).unwrap();

    let cache = engine.shared_cache().expect("engine built with shared cache");
    // Recompute the exact expected occupancy from the resident chunks: the
    // cache's internal ledger must equal the sum of its residents' sizes
    // and respect the budget, even after four threads filled and evicted
    // concurrently.
    let mut resident_bytes = 0usize;
    let mut resident_chunks = 0usize;
    for meta in engine.store().manifest().dims.iter().flatten() {
        if let Some(chunk) = cache.get_if_resident(meta.id()) {
            resident_bytes += uei_storage::approx_chunk_bytes(&chunk);
            resident_chunks += 1;
        }
    }
    assert_eq!(cache.len(), resident_chunks, "resident-chunk count drifted");
    assert_eq!(
        cache.used_bytes(),
        resident_bytes,
        "cache used_bytes ledger drifted from the resident set"
    );
    assert!(cache.used_bytes() <= cache.budget_bytes(), "budget overrun");
    let agg = engine.cache_stats();
    assert!(agg.hits + agg.misses > 0, "cache saw traffic");
}
