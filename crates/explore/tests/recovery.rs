//! Crash-recovery pins (DESIGN.md §13).
//!
//! Two invariants:
//!
//! 1. **Kill-point matrix** — for a crash injected at *every* journal
//!    write boundary (before the write, mid-write torn, after the write),
//!    recovery yields a session whose traces are bit-identical (modeled
//!    fields) to an uninterrupted golden run: no acknowledged label is
//!    lost, no iteration diverges.
//! 2. **Panic isolation** — one panicking session in a concurrent
//!    4-session run never poisons its siblings: their traces stay
//!    bit-identical to solo runs, and the panicking session is either
//!    reported aborted or, when journaled, recovered and completed with
//!    the exact traces of an undisturbed run.

use std::path::Path;
use std::sync::Arc;

use uei_explore::backend::{ExplorationBackend, SelectionInfo, UeiBackend};
use uei_explore::multi::{
    run_one_session, run_sessions_supervised_with, summarize_outcomes, SessionSpec,
};
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, IterationTrace, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_learn::dataset::LabeledSet;
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::Classifier;
use uei_storage::fault::{FaultConfig, FaultInjector, KillMode};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::journal::{FsyncPolicy, JournalConfig};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_types::{DataPoint, Result, Rng, RowId, Schema};

const SAMPLE_SEED: u64 = 77;
const GAMMA: usize = 150;

fn session_config() -> SessionConfig {
    SessionConfig {
        max_labels: 8,
        bootstrap_size: 100,
        eval_sample: 120,
        seed: 42,
        ..SessionConfig::default()
    }
}

/// Small segments force rotations and a tight snapshot cadence exercises
/// the snapshot publish/GC path inside the matrix.
fn journal_config() -> JournalConfig {
    JournalConfig { fsync: FsyncPolicy::Always, segment_bytes: 4096, snapshot_every: 3 }
}

fn fixture(rows: usize) -> (Vec<DataPoint>, Oracle) {
    let rows = generate_sdss_like(&SynthConfig { rows, ..Default::default() });
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    (rows, Oracle::new(target))
}

fn uei_config() -> UeiConfig {
    UeiConfig {
        cells_per_dim: 3,
        chunk_cache_bytes: 256 << 10,
        prefetch: false,
        journal: journal_config(),
        ..UeiConfig::default()
    }
}

/// A fresh backend over the shared store — same seeds every time, so every
/// run (golden, crashed, recovered) starts from an identical state.
fn fresh_backend(store: &Arc<ColumnStore>) -> UeiBackend {
    let mut rng = Rng::new(SAMPLE_SEED);
    UeiBackend::new(
        Arc::clone(store),
        uei_config(),
        UncertaintyMeasure::LeastConfidence,
        GAMMA,
        &mut rng,
    )
    .unwrap()
}

/// Everything in a trace except wall-clock time and the recovery marker,
/// both of which legitimately differ between a golden and a recovered run.
fn modeled_fields(t: &IterationTrace) -> impl std::fmt::Debug + PartialEq {
    (
        (
            t.iteration,
            t.labels,
            t.f_measure.map(f64::to_bits),
            t.response_virtual_ms.to_bits(),
            t.bytes_read,
            t.seeks,
            t.label_positive,
        ),
        (
            t.region_rows,
            t.prefetched,
            t.counters.cache_hits,
            t.counters.cache_misses,
            t.counters.cache_evictions,
            t.counters.cache_bypasses,
            t.counters.prefetch_bytes_read,
            t.counters.retries,
            t.counters.fallback_cells,
            t.counters.degraded,
            t.examined,
        ),
    )
}

fn assert_same_run(golden: &SessionResult, got: &SessionResult, context: &str) {
    assert_eq!(golden.labels_used, got.labels_used, "{context}: labels_used");
    assert_eq!(
        golden.final_f_measure.to_bits(),
        got.final_f_measure.to_bits(),
        "{context}: final F-measure"
    );
    assert_eq!(golden.traces.len(), got.traces.len(), "{context}: trace count");
    for (i, (a, b)) in golden.traces.iter().zip(&got.traces).enumerate() {
        assert_eq!(modeled_fields(a), modeled_fields(b), "{context}: iteration {i} diverged");
    }
}

#[test]
fn kill_point_matrix_recovers_bit_identically() {
    let (rows, oracle) = fixture(1500);
    let dir = uei_storage::TempDir::new("recovery-matrix");
    let tracker = DiskTracker::new(IoProfile::instant());
    let injector = FaultInjector::new(FaultConfig { seed: 0xFEED, ..FaultConfig::off() }).unwrap();
    tracker.set_fault_injector(Some(Arc::clone(&injector)));
    let store = Arc::new(
        ColumnStore::create(
            dir.path().join("store"),
            Schema::sdss(),
            &rows,
            StoreConfig { chunk_target_bytes: 8192 },
            tracker.clone(),
        )
        .unwrap(),
    );

    let run_journaled = |journal_dir: &Path| -> Result<SessionResult> {
        let mut backend = fresh_backend(&store);
        let mut session =
            ExplorationSession::new(&mut backend, &oracle, session_config(), tracker.clone());
        session.attach_journal(journal_dir, journal_config())?;
        session.run()
    };
    let recover_journaled = |journal_dir: &Path| -> Result<SessionResult> {
        let mut backend = fresh_backend(&store);
        let (session, state) = ExplorationSession::recover(
            &mut backend,
            &oracle,
            session_config(),
            tracker.clone(),
            journal_dir,
            journal_config(),
        )?;
        session.run_from(state)
    };

    // Baseline without a journal: journaling must not perturb the traces.
    let plain = {
        let mut backend = fresh_backend(&store);
        ExplorationSession::new(&mut backend, &oracle, session_config(), tracker.clone())
            .run()
            .unwrap()
    };

    // Golden journaled run; count its journal write operations.
    let writes_before = injector.stats().writes_seen;
    let golden = run_journaled(&dir.path().join("golden")).unwrap();
    let golden_writes = injector.stats().writes_seen - writes_before;
    assert_same_run(&plain, &golden, "journaled vs plain");
    assert!(
        golden_writes >= session_config().max_labels as u64 + 4,
        "expected appends + rotations + snapshots, saw {golden_writes} journal writes"
    );

    // The matrix: crash at every write boundary of every journal op, then
    // recover and run to completion. Every cell must reproduce the golden
    // run bit-for-bit (modeled fields).
    let mut kills = 0u64;
    for op in 0..golden_writes {
        for mode in [KillMode::BeforeWrite, KillMode::Torn, KillMode::AfterWrite] {
            let journal_dir = dir.path().join(format!("kill-{op}-{mode:?}"));
            injector.arm_journal_kill(injector.stats().writes_seen + op, mode);
            let crashed = run_journaled(&journal_dir);
            assert!(crashed.is_err(), "kill at op {op} ({mode:?}) did not surface as an error");
            assert!(injector.armed_journal_kill().is_none(), "kill must be consumed");
            kills += 1;

            let recovered = recover_journaled(&journal_dir)
                .unwrap_or_else(|e| panic!("recovery after op {op} ({mode:?}) failed: {e}"));
            assert_same_run(&golden, &recovered, &format!("kill at op {op} ({mode:?})"));
        }
    }
    assert_eq!(injector.stats().kills_fired, kills);
}

/// Wraps a backend and panics on the N-th selection — the fault the
/// supervisor must contain.
struct PanicAfter {
    inner: UeiBackend,
    selections_left: usize,
}

impl ExplorationBackend for PanicAfter {
    fn name(&self) -> &'static str {
        self.inner.name()
    }
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }
    fn num_rows(&self) -> u64 {
        self.inner.num_rows()
    }
    fn sample_rows(&mut self, k: usize, rng: &mut Rng) -> Result<Vec<DataPoint>> {
        self.inner.sample_rows(k, rng)
    }
    fn fetch_rows(&mut self, ids: &[u64]) -> Result<Vec<DataPoint>> {
        self.inner.fetch_rows(ids)
    }
    fn select_next(
        &mut self,
        model: &dyn Classifier,
        labeled: &LabeledSet,
    ) -> Result<Option<(DataPoint, SelectionInfo)>> {
        if self.selections_left == 0 {
            panic!("injected backend panic");
        }
        self.selections_left -= 1;
        self.inner.select_next(model, labeled)
    }
    fn mark_labeled(&mut self, id: RowId) {
        self.inner.mark_labeled(id);
    }
    fn retrieve_results(&mut self, model: &dyn Classifier) -> Result<Vec<u64>> {
        self.inner.retrieve_results(model)
    }
}

fn build_engine(dir: &Path, rows: &[DataPoint]) -> EngineCore {
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.to_path_buf(),
        Schema::sdss(),
        rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .unwrap();
    EngineCore::new(Arc::new(store), uei_config()).unwrap()
}

fn specs(journal_root: Option<&Path>) -> Vec<SessionSpec> {
    (0..4u64)
        .map(|i| SessionSpec {
            session: SessionConfig {
                max_labels: 8,
                bootstrap_size: 100,
                eval_sample: 120,
                seed: 1000 + i,
                ..SessionConfig::default()
            },
            sample_seed: 2000 + i,
            gamma: 150,
            journal_dir: journal_root.map(|r| r.join(format!("session-{i}"))),
            postmortem_dir: None,
        })
        .collect()
}

const PANICKING_SESSION: usize = 2;

/// Runs `spec` with a backend that panics on its 4th selection; the other
/// specs run normally. Identifies the victim by its session seed.
fn panicking_runner(
    engine: &EngineCore,
    oracle: &Oracle,
    spec: &SessionSpec,
) -> Result<SessionResult> {
    if spec.session.seed != 1000 + PANICKING_SESSION as u64 {
        return run_one_session(engine, oracle, spec);
    }
    let mut rng = Rng::new(spec.sample_seed);
    let inner = UeiBackend::from_engine(engine, spec.gamma, &mut rng)?;
    let tracker = inner.index().store().tracker().clone();
    let mut backend = PanicAfter { inner, selections_left: 4 };
    let mut session = ExplorationSession::new(&mut backend, oracle, spec.session.clone(), tracker);
    if let Some(dir) = &spec.journal_dir {
        session.attach_journal(dir, engine.config().journal)?;
    }
    session.run()
}

#[test]
fn panicking_session_is_isolated_and_reported_aborted() {
    let (rows, oracle) = fixture(2000);
    let dir = uei_storage::TempDir::new("panic-isolation");
    let engine = build_engine(&dir.path().join("store"), &rows);
    let specs = specs(None);

    // Solo baselines on a separate engine (no shared-state help).
    let solo_engine = build_engine(&dir.path().join("solo"), &rows);
    let solo: Vec<SessionResult> =
        specs.iter().map(|s| run_one_session(&solo_engine, &oracle, s).unwrap()).collect();

    let outcomes = run_sessions_supervised_with(&engine, &oracle, &specs, &panicking_runner);
    assert_eq!(outcomes.len(), 4);
    for (i, outcome) in outcomes.iter().enumerate() {
        if i == PANICKING_SESSION {
            assert!(outcome.aborted, "panicked session without a journal must abort");
            assert!(outcome.result.is_none());
            assert!(
                outcome.error.as_deref().unwrap_or("").contains("injected backend panic"),
                "abort reason names the panic: {:?}",
                outcome.error
            );
        } else {
            let result = outcome.result.as_ref().expect("sibling completed");
            assert!(!outcome.aborted && !outcome.recovered);
            assert_same_run(&solo[i], result, &format!("sibling session {i}"));
        }
    }

    let summary = summarize_outcomes(&outcomes);
    assert_eq!(summary.aborted_runs, 1);
    assert_eq!(summary.recovered_runs, 0);
    assert_eq!(summary.runs, 3);
}

#[test]
fn panicking_session_with_journal_is_recovered_to_completion() {
    let (rows, oracle) = fixture(2000);
    let dir = uei_storage::TempDir::new("panic-recovery");
    let journal_root = dir.path().join("journals");
    let engine = build_engine(&dir.path().join("store"), &rows);
    let specs = specs(Some(&journal_root));

    // Solo baseline for the victim (journaled, undisturbed).
    let solo_engine = build_engine(&dir.path().join("solo"), &rows);
    let mut solo_spec = specs[PANICKING_SESSION].clone();
    solo_spec.journal_dir = Some(dir.path().join("solo-journal"));
    let solo = run_one_session(&solo_engine, &oracle, &solo_spec).unwrap();

    let outcomes = run_sessions_supervised_with(&engine, &oracle, &specs, &panicking_runner);
    let victim = &outcomes[PANICKING_SESSION];
    assert!(victim.recovered, "journaled session must be recovered, not aborted");
    assert!(!victim.aborted);
    let result = victim.result.as_ref().expect("recovered to completion");
    assert_same_run(&solo, result, "recovered session vs solo");

    // The journal replay preserved pre-crash traces verbatim and stamped
    // only post-recovery iterations.
    assert!(result.traces.iter().take(3).all(|t| !t.recovered), "replayed traces keep false");
    assert!(result.traces.iter().skip(3).any(|t| t.recovered), "continuation is stamped");

    let summary = summarize_outcomes(&outcomes);
    assert_eq!(summary.aborted_runs, 0);
    assert_eq!(summary.recovered_runs, 1);
    assert_eq!(summary.runs, 4);
}
