//! Acceptance tests for the telemetry subsystem (DESIGN.md §15):
//!
//! 1. Telemetry is *observational*: a fixed-seed session produces
//!    bit-identical modeled traces whether telemetry is off (the default)
//!    or on — only the observational fields (`phase_ms`) differ.
//! 2. An enabled session reports every one of the seven instrumented
//!    phases, in both the per-trace breakdown and the engine exporters.
//! 3. The supervisor dumps a flight-recorder postmortem when a session
//!    panics and when a run completes degraded, and the dump survives a
//!    serde round trip.

use std::sync::Arc;

use uei_explore::backend::UeiBackend;
use uei_explore::multi::{run_one_session, run_sessions_supervised_with, SessionSpec};
use uei_explore::oracle::Oracle;
use uei_explore::session::{ExplorationSession, SessionConfig, SessionResult};
use uei_explore::synth::{generate_sdss_like, SynthConfig};
use uei_explore::workload::generate_target_region_fraction;
use uei_index::config::UeiConfig;
use uei_index::engine::EngineCore;
use uei_learn::strategy::UncertaintyMeasure;
use uei_obs::{ObsCounters, Phase, Postmortem, TelemetryConfig};
use uei_storage::io::{DiskTracker, IoProfile};
use uei_storage::store::{ColumnStore, StoreConfig};
use uei_storage::TempDir;
use uei_types::{DataPoint, Rng, Schema};

fn oracle_for(rows: &[DataPoint]) -> Oracle {
    let mut rng = Rng::new(13);
    let target = generate_target_region_fraction(rows, &Schema::sdss(), 0.02, &mut rng).unwrap();
    Oracle::new(target)
}

/// Runs a fixed-seed standalone session with the given telemetry config
/// and returns its result.
fn run_fixed_session(tag: &str, telemetry: TelemetryConfig) -> SessionResult {
    let dir = TempDir::new(&format!("telemetry-{tag}"));
    let rows = generate_sdss_like(&SynthConfig { rows: 3000, ..Default::default() });
    let oracle = oracle_for(&rows);

    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker.clone(),
    )
    .unwrap();
    let mut backend_rng = Rng::new(1);
    let mut backend = UeiBackend::new(
        Arc::new(store),
        UeiConfig { cells_per_dim: 3, telemetry, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        250,
        &mut backend_rng,
    )
    .unwrap();
    let config = SessionConfig {
        max_labels: 14,
        bootstrap_size: 150,
        eval_sample: 200,
        ..SessionConfig::default()
    };
    ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap()
}

/// Everything modeled about one iteration — every field that must not move
/// when telemetry is switched on. Wall-clock fields and `phase_ms` are the
/// only legitimate differences between the two runs.
type ModeledIteration = (usize, usize, Option<u64>, bool, Option<usize>, u64, u64, ObsCounters);

fn modeled_fingerprint(r: &SessionResult) -> Vec<ModeledIteration> {
    r.traces
        .iter()
        .map(|t| {
            (
                t.iteration,
                t.labels,
                t.f_measure.map(f64::to_bits),
                t.label_positive,
                t.region_rows,
                t.response_virtual_ms.to_bits(),
                t.bytes_read,
                t.counters,
            )
        })
        .collect()
}

#[test]
fn telemetry_on_and_off_produce_identical_modeled_traces() {
    let off = run_fixed_session("off", TelemetryConfig::default());
    let on = run_fixed_session("on", TelemetryConfig::on());

    assert_eq!(
        modeled_fingerprint(&off),
        modeled_fingerprint(&on),
        "telemetry must be purely observational: modeled traces diverged"
    );
    assert!(off.traces.iter().all(|t| t.phase_ms.is_empty()), "disabled telemetry records nothing");
    assert!(
        on.traces.iter().all(|t| !t.phase_ms.is_empty()),
        "enabled telemetry must attach a phase breakdown to every trace"
    );
}

#[test]
fn enabled_engine_session_reports_all_seven_phases() {
    let dir = TempDir::new("telemetry-phases");
    let rows = generate_sdss_like(&SynthConfig { rows: 2500, ..Default::default() });
    let oracle = oracle_for(&rows);

    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .unwrap();
    let engine = EngineCore::new(
        Arc::new(store),
        UeiConfig { cells_per_dim: 3, telemetry: TelemetryConfig::on(), ..UeiConfig::default() },
    )
    .unwrap();

    // Journaling makes the seventh phase (journal_append) fire.
    let spec = SessionSpec {
        session: SessionConfig {
            max_labels: 10,
            bootstrap_size: 120,
            eval_sample: 150,
            seed: 42,
            ..SessionConfig::default()
        },
        sample_seed: 7,
        gamma: 200,
        journal_dir: Some(dir.join("journal")),
        postmortem_dir: None,
    };
    let result = run_one_session(&engine, &oracle, &spec).unwrap();

    let mut seen: Vec<String> =
        result.traces.iter().flat_map(|t| t.phase_ms.iter().map(|p| p.phase.clone())).collect();
    seen.sort();
    seen.dedup();
    for phase in Phase::ALL {
        assert!(
            seen.iter().any(|s| s == phase.name()),
            "phase {} missing from trace breakdowns (saw {seen:?})",
            phase.name()
        );
    }

    // Both exporters carry one histogram pair per phase.
    let prom = engine.telemetry().to_prometheus();
    let snapshot = engine.telemetry().snapshot();
    for phase in Phase::ALL {
        let wall = format!("uei_phase_wall_us_{}", phase.name());
        let virt = format!("uei_phase_virtual_us_{}", phase.name());
        assert!(prom.contains(&wall), "prometheus export missing {wall}");
        assert!(prom.contains(&virt), "prometheus export missing {virt}");
        assert!(
            snapshot.histograms.iter().any(|h| h.name == wall && h.count > 0),
            "snapshot missing a populated {wall}"
        );
    }
}

fn small_engine(dir: &TempDir) -> (EngineCore, Oracle) {
    let rows = generate_sdss_like(&SynthConfig { rows: 1500, ..Default::default() });
    let oracle = oracle_for(&rows);
    let tracker = DiskTracker::new(IoProfile::instant());
    let store = ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 8192 },
        tracker,
    )
    .unwrap();
    let engine = EngineCore::new(
        Arc::new(store),
        UeiConfig { cells_per_dim: 3, telemetry: TelemetryConfig::on(), ..UeiConfig::default() },
    )
    .unwrap();
    (engine, oracle)
}

fn spec_with_postmortems(dir: &TempDir, seed: u64) -> SessionSpec {
    SessionSpec {
        session: SessionConfig { max_labels: 6, seed, ..SessionConfig::default() },
        sample_seed: seed,
        gamma: 100,
        journal_dir: None,
        postmortem_dir: Some(dir.join("postmortems")),
    }
}

fn read_postmortem(dir: &TempDir, cause: &str, seed: u64) -> Postmortem {
    let path = dir.join("postmortems").join(format!("postmortem-{cause}-{seed}.json"));
    let json = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("postmortem {} not written: {e}", path.display()));
    let postmortem: Postmortem = serde_json::from_str(&json).expect("postmortem deserializes");
    // Serde round trip: re-serializing the parsed dump reproduces it.
    let rt = serde_json::to_string_pretty(&postmortem).unwrap();
    assert_eq!(rt, json, "postmortem JSON did not survive a serde round trip");
    postmortem
}

#[test]
fn supervisor_dumps_postmortem_on_panicking_session() {
    let dir = TempDir::new("telemetry-panic");
    let (engine, oracle) = small_engine(&dir);
    let spec = spec_with_postmortems(&dir, 91);

    let outcomes = run_sessions_supervised_with(
        &engine,
        &oracle,
        std::slice::from_ref(&spec),
        &|engine, _, _| {
            // Leave a flight-recorder trail before dying, as a real
            // session would.
            let tel = engine.telemetry().open_session(None);
            tel.event(uei_obs::FlightEventKind::Retry, 1, || "one retry before the end".into());
            panic!("injected telemetry-test panic");
        },
    );
    assert_eq!(outcomes.len(), 1);
    assert!(outcomes[0].aborted, "no journal: the panicking session aborts");

    let postmortem = read_postmortem(&dir, "panic", 91);
    assert_eq!(postmortem.cause, "panic");
    assert!(
        postmortem.reason.contains("injected telemetry-test panic"),
        "reason carries the panic message: {}",
        postmortem.reason
    );
    assert!(
        postmortem.events.iter().any(|e| e.detail.contains("one retry before the end")),
        "flight events recorded before the panic survive into the dump"
    );
}

#[test]
fn supervisor_dumps_postmortem_on_degraded_completion() {
    let dir = TempDir::new("telemetry-degraded");
    let (engine, oracle) = small_engine(&dir);
    let spec = spec_with_postmortems(&dir, 17);

    // A runner that completes, but with one degraded iteration — the
    // supervisor must notice and dump even though nothing failed.
    let outcomes =
        run_sessions_supervised_with(&engine, &oracle, std::slice::from_ref(&spec), &|_, _, _| {
            let trace_counters = ObsCounters { degraded: true, ..Default::default() };
            Ok(SessionResult {
                backend: "uei".into(),
                total_virtual_secs: 0.0,
                total_wall_secs: 0.0,
                labels_used: 3,
                final_f_measure: 0.5,
                traces: vec![uei_explore::session::IterationTrace {
                    iteration: 1,
                    labels: 3,
                    f_measure: Some(0.5),
                    response_virtual_ms: 1.0,
                    response_wall_ms: 1.0,
                    bytes_read: 10,
                    seeks: 1,
                    label_positive: true,
                    region_rows: None,
                    prefetched: false,
                    counters: trace_counters,
                    recovered: false,
                    examined: None,
                    wall_ms_replayed: false,
                    phase_ms: Vec::new(),
                }],
            })
        });
    assert!(!outcomes[0].aborted);
    assert!(outcomes[0].result.is_some());

    let postmortem = read_postmortem(&dir, "degraded", 17);
    assert_eq!(postmortem.cause, "degraded");
    assert!(postmortem.reason.contains("degraded iterations"));
}
