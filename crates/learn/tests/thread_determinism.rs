//! Batch scoring must be byte-identical regardless of how many rayon
//! threads run it. This lives in its own integration binary because it
//! mutates `RAYON_NUM_THREADS`, which must not race other tests'
//! environment reads.

use uei_learn::strategy::{rank_pool, select_batch, top_k_desc, UncertaintySampling};
use uei_learn::{Classifier, EstimatorKind, QueryStrategy, UncertaintyMeasure};
use uei_types::{DataPoint, Label};

/// Deterministic pseudo-random coordinate in [-2, 2).
fn coord(i: u64, d: u64) -> f64 {
    let mut x = i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(d ^ 0x9e37_79b9);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    (x % 4_000) as f64 / 1_000.0 - 2.0
}

fn training_examples() -> Vec<(Vec<f64>, Label)> {
    let mut examples = Vec::new();
    for i in 0..12u64 {
        examples
            .push((vec![coord(i, 0).abs(), coord(i, 1).abs(), coord(i, 2).abs()], Label::Positive));
        examples.push((
            vec![-coord(i, 3).abs(), -coord(i, 4).abs(), -coord(i, 5).abs()],
            Label::Negative,
        ));
    }
    examples
}

/// A pool large enough to cross `PARALLEL_THRESHOLD`, so the batch path
/// genuinely fans out when threads > 1.
fn pool() -> Vec<DataPoint> {
    (0..1_000u64)
        .map(|i| DataPoint::new(i, vec![coord(i, 10), coord(i, 11), coord(i, 12)]))
        .collect()
}

struct Observed {
    batch_bits: Vec<u64>,
    ranked: Vec<(usize, f64)>,
    top: Vec<usize>,
    selected: Option<usize>,
}

fn observe(model: &dyn Classifier, pool: &[DataPoint]) -> Observed {
    let refs: Vec<&[f64]> = pool.iter().map(|p| p.values.as_slice()).collect();
    let batch_bits = model.predict_proba_batch(&refs).iter().map(|p| p.to_bits()).collect();
    let measure = UncertaintyMeasure::LeastConfidence;
    let ranked = rank_pool(model, pool, measure);
    let scores: Vec<f64> = ranked.iter().map(|&(_, s)| s).collect();
    let top = top_k_desc(&scores, 25);
    let mut strategy = UncertaintySampling::new(measure);
    let selected = strategy.select(model, pool);
    let _ = select_batch(model, pool, measure, 25).unwrap();
    Observed { batch_bits, ranked, top, selected }
}

#[test]
fn results_identical_across_thread_counts() {
    assert!(
        uei_learn::should_parallelize(1_000) || rayon::current_num_threads() <= 1,
        "pool must be large enough to trigger the parallel path"
    );
    let model = EstimatorKind::Dwknn { k: 3 }.train(&training_examples()).unwrap();
    let pool = pool();

    std::env::set_var("RAYON_NUM_THREADS", "1");
    let baseline = observe(model.as_ref(), &pool);

    for threads in ["2", "3", "8"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        let got = observe(model.as_ref(), &pool);
        assert_eq!(got.batch_bits, baseline.batch_bits, "probs differ at {threads} threads");
        for (a, b) in got.ranked.iter().zip(&baseline.ranked) {
            assert_eq!(a.0, b.0, "rank order differs at {threads} threads");
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "rank score differs at {threads} threads");
        }
        assert_eq!(got.top, baseline.top, "top-k differs at {threads} threads");
        assert_eq!(got.selected, baseline.selected, "select differs at {threads} threads");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}
