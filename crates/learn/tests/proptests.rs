//! Property-based tests for the learning toolkit: kd-tree vs brute force,
//! probability bounds for every classifier, metric identities, and the
//! scaler.

use proptest::prelude::*;
use uei_learn::kdtree::{KdTree, NearestScratch};
use uei_learn::metrics::{set_f_measure, ConfusionMatrix};
use uei_learn::strategy::UncertaintyMeasure;
use uei_learn::{Classifier, Committee, EstimatorKind, MinMaxScaler, ScaledClassifier};
use uei_types::point::squared_distance;
use uei_types::{Label, Region};

fn points_strategy(dims: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    proptest::collection::vec(proptest::collection::vec(-100.0f64..100.0, dims), 1..80)
}

fn brute_knn(points: &[Vec<f64>], q: &[f64], k: usize) -> Vec<(f64, usize)> {
    let mut all: Vec<(f64, usize)> =
        points.iter().enumerate().map(|(i, p)| (squared_distance(p, q).unwrap(), i)).collect();
    all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    all.truncate(k);
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn kdtree_knn_equals_brute_force(
        points in points_strategy(3),
        query in proptest::collection::vec(-120.0f64..120.0, 3),
        k in 1usize..12,
    ) {
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&query, k).unwrap();
        let want = brute_knn(&points, &query, k);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn kdtree_bit_identical_across_dims(
        (points, query, k) in (1usize..=8).prop_flat_map(|dims| (
            proptest::collection::vec(
                proptest::collection::vec(-50.0f64..50.0, dims), 1..60),
            proptest::collection::vec(-60.0f64..60.0, dims),
            1usize..70, // exceeds the point count: covers k >= n
        )),
    ) {
        // The flat bucketed tree must return *bit-identical* (dist², index)
        // sequences to brute force — same distances down to the last ulp
        // (identical accumulation order), same tie-breaking by build index.
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&query, k).unwrap();
        let want = brute_knn(&points, &query, k);
        prop_assert_eq!(got.len(), want.len());
        for (i, ((gd, gi), (wd, wi))) in got.iter().zip(&want).enumerate() {
            prop_assert_eq!(
                (gd.to_bits(), *gi), (wd.to_bits(), *wi),
                "rank {i}: got ({gd}, {gi}) want ({wd}, {wi})"
            );
        }
    }

    #[test]
    fn kdtree_bit_identical_on_duplicate_heavy_sets(
        (points, query, k) in (1usize..=4).prop_flat_map(|dims| (
            proptest::collection::vec(
                proptest::collection::vec((-2i32..3).prop_map(f64::from), dims), 1..80),
            proptest::collection::vec((-2i32..3).prop_map(f64::from), dims),
            1usize..90,
        )),
    ) {
        // Coordinates drawn from five integers: masses of exact duplicates
        // and exact distance ties, so the build-index tie-break carries all
        // the ordering. Duplicates also stress the median partition (equal
        // keys must still split into two non-empty sides).
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&query, k).unwrap();
        let want = brute_knn(&points, &query, k);
        prop_assert_eq!(got.len(), want.len());
        for ((gd, gi), (wd, wi)) in got.iter().zip(&want) {
            prop_assert_eq!((gd.to_bits(), *gi), (wd.to_bits(), *wi));
        }
    }

    #[test]
    fn nearest_scratch_reuse_never_leaks_state(
        (a_pts, a_qs, b_pts, b_qs, k) in ((1usize..=6), (1usize..=6)).prop_flat_map(|(da, db)| (
            proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, da), 1..40),
            proptest::collection::vec(
                proptest::collection::vec(-12.0f64..12.0, da), 1..6),
            proptest::collection::vec(
                proptest::collection::vec(-10.0f64..10.0, db), 1..40),
            proptest::collection::vec(
                proptest::collection::vec(-12.0f64..12.0, db), 1..6),
            1usize..50,
        )),
    ) {
        // One scratch shared across two trees of independent shapes and
        // dimensionalities, queries interleaved: every answer must equal
        // the fresh-scratch answer bit for bit.
        let ta = KdTree::build(a_pts.clone()).unwrap();
        let tb = KdTree::build(b_pts.clone()).unwrap();
        let mut scratch = NearestScratch::new();
        for i in 0..a_qs.len().max(b_qs.len()) {
            if let Some(q) = a_qs.get(i) {
                let shared = ta.nearest_with(&mut scratch, q, k).unwrap().to_vec();
                let fresh = ta.nearest(q, k).unwrap();
                prop_assert_eq!(shared, fresh);
            }
            if let Some(q) = b_qs.get(i) {
                let shared = tb.nearest_with(&mut scratch, q, k).unwrap().to_vec();
                let fresh = tb.nearest(q, k).unwrap();
                prop_assert_eq!(shared, fresh);
            }
        }
    }

    #[test]
    fn kdtree_range_equals_filter(
        points in points_strategy(2),
        lo in proptest::collection::vec(-120.0f64..0.0, 2),
        width in proptest::collection::vec(0.0f64..200.0, 2),
    ) {
        let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
        let region = Region::new(lo, hi).unwrap();
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.range_query(&region).unwrap();
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p).unwrap())
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn all_classifiers_emit_valid_probabilities(
        pos in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 2..20),
        neg in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..0.0, 3), 2..20),
        queries in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 3), 1..10),
    ) {
        let mut examples: Vec<(Vec<f64>, Label)> =
            pos.into_iter().map(|x| (x, Label::Positive)).collect();
        examples.extend(neg.into_iter().map(|x| (x, Label::Negative)));
        for kind in [
            EstimatorKind::Dwknn { k: 3 },
            EstimatorKind::Knn { k: 3 },
            EstimatorKind::NaiveBayes,
            EstimatorKind::LinearSvm { epochs: 5, lambda: 1e-2 },
        ] {
            let model = kind.train(&examples).unwrap();
            for q in &queries {
                let p = model.predict_proba(q);
                prop_assert!(
                    (0.0..=1.0).contains(&p) && p.is_finite(),
                    "{}: p = {p}", kind.name()
                );
                let u = model.uncertainty(q);
                prop_assert!((0.0..=0.5).contains(&u), "{}: u = {u}", kind.name());
            }
        }
    }

    #[test]
    fn uncertainty_measures_symmetric_and_peaked(p in 0.0f64..=1.0) {
        for m in [
            UncertaintyMeasure::LeastConfidence,
            UncertaintyMeasure::Margin,
            UncertaintyMeasure::Entropy,
        ] {
            let s = m.score(p);
            let s_mirror = m.score(1.0 - p);
            prop_assert!((s - s_mirror).abs() < 1e-9, "{m:?} not symmetric at {p}");
            prop_assert!(s <= m.score(0.5) + 1e-12, "{m:?} exceeds its peak at {p}");
            prop_assert!(s >= 0.0);
        }
    }

    #[test]
    fn confusion_matrix_identities(tp in 0u64..1000, fp in 0u64..1000, fn_ in 0u64..1000, tn in 0u64..1000) {
        let m = ConfusionMatrix { tp, fp, fn_, tn };
        let f1 = m.f_measure();
        prop_assert!((0.0..=1.0).contains(&f1));
        prop_assert!((0.0..=1.0).contains(&m.precision()));
        prop_assert!((0.0..=1.0).contains(&m.recall()));
        // F1, a mean, lies between precision and recall.
        if m.precision() > 0.0 && m.recall() > 0.0 {
            let (lo, hi) = (m.precision().min(m.recall()), m.precision().max(m.recall()));
            prop_assert!(f1 >= lo - 1e-12 && f1 <= hi + 1e-12);
        }
        // F1 = 1 iff perfect.
        if f1 > 1.0 - 1e-12 {
            prop_assert_eq!(fp, 0);
            prop_assert_eq!(fn_, 0);
        }
    }

    #[test]
    fn set_f_measure_agrees_with_matrix(
        predicted in proptest::collection::btree_set(0u64..200, 0..60),
        relevant in proptest::collection::btree_set(0u64..200, 0..60),
    ) {
        let p: Vec<u64> = predicted.iter().copied().collect();
        let r: Vec<u64> = relevant.iter().copied().collect();
        let tp = predicted.intersection(&relevant).count() as u64;
        let m = ConfusionMatrix {
            tp,
            fp: p.len() as u64 - tp,
            fn_: r.len() as u64 - tp,
            tn: 0,
        };
        prop_assert!((set_f_measure(&p, &r) - m.f_measure()).abs() < 1e-12);
    }

    #[test]
    fn scaler_roundtrip(
        dims_data in (1usize..6).prop_flat_map(|d| (
            proptest::collection::vec(-1e3f64..1e3, d),
            proptest::collection::vec(0.001f64..1e3, d),
            proptest::collection::vec(0.0f64..1.0, d),
        )),
    ) {
        let (lo, width, t) = dims_data;
        let hi: Vec<f64> = lo.iter().zip(&width).map(|(l, w)| l + w).collect();
        let scaler = MinMaxScaler::new(lo.clone(), hi).unwrap();
        let point: Vec<f64> =
            lo.iter().zip(&width).zip(&t).map(|((l, w), tt)| l + w * tt).collect();
        let z = scaler.transform(&point).unwrap();
        for &v in &z {
            prop_assert!((-1e-9..=1.0 + 1e-9).contains(&v));
        }
        let back = scaler.inverse(&z).unwrap();
        for (a, b) in point.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + a.abs()));
        }
    }

    #[test]
    fn batch_scoring_is_bit_identical_to_sequential(
        pos in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 2..15),
        neg in proptest::collection::vec(
            proptest::collection::vec(-1.0f64..0.0, 3), 2..15),
        queries in proptest::collection::vec(
            proptest::collection::vec(-2.0f64..2.0, 3), 1..40),
    ) {
        // The batch-scoring contract: predict_proba_batch(xs)[i] is
        // bit-for-bit the same float predict_proba(xs[i]) returns, for
        // every classifier, including the composite ones.
        let mut examples: Vec<(Vec<f64>, Label)> =
            pos.into_iter().map(|x| (x, Label::Positive)).collect();
        examples.extend(neg.into_iter().map(|x| (x, Label::Negative)));
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();

        let mut models: Vec<(String, Box<dyn Classifier>)> = Vec::new();
        for kind in [
            EstimatorKind::Dwknn { k: 3 },
            EstimatorKind::Knn { k: 3 },
            EstimatorKind::NaiveBayes,
            EstimatorKind::LinearSvm { epochs: 5, lambda: 1e-2 },
        ] {
            models.push((kind.name().to_string(), kind.train(&examples).unwrap()));
        }
        models.push((
            "committee".to_string(),
            Box::new(Committee::train(
                EstimatorKind::Dwknn { k: 3 }, 3, &examples, 7).unwrap()),
        ));
        let scaler = MinMaxScaler::new(vec![-2.0; 3], vec![2.0; 3]).unwrap();
        models.push((
            "scaled-dwknn".to_string(),
            Box::new(ScaledClassifier::train(
                EstimatorKind::Dwknn { k: 3 }, scaler, &examples).unwrap()),
        ));

        for (name, model) in &models {
            let batch = model.predict_proba_batch(&refs);
            prop_assert_eq!(batch.len(), queries.len());
            for (i, q) in queries.iter().enumerate() {
                let scalar = model.predict_proba(q);
                prop_assert_eq!(
                    batch[i].to_bits(), scalar.to_bits(),
                    "{}: batch[{i}] = {} vs scalar {}", name, batch[i], scalar
                );
            }
        }
    }

    #[test]
    fn dwknn_prediction_matches_training_labels_on_exact_points(
        pos in proptest::collection::vec(
            proptest::collection::vec(5.0f64..10.0, 2), 2..10),
        neg in proptest::collection::vec(
            proptest::collection::vec(-10.0f64..-5.0, 2), 2..10),
    ) {
        // Well-separated clusters: every training point must classify as
        // its own label with k = 1.
        let mut examples: Vec<(Vec<f64>, Label)> =
            pos.iter().cloned().map(|x| (x, Label::Positive)).collect();
        examples.extend(neg.iter().cloned().map(|x| (x, Label::Negative)));
        let model = uei_learn::Dwknn::fit(1, &examples).unwrap();
        for (x, label) in &examples {
            prop_assert_eq!(model.predict(x), *label);
        }
    }
}
