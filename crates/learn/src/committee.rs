//! Query-by-committee (Seung, Opper & Sompolinsky 1992).
//!
//! One of the alternative query strategies the paper's background lists
//! (§2.1). A committee of classifiers is trained on bootstrap resamples of
//! the labeled set; the next example is the one the members disagree on
//! most (vote entropy). The committee also acts as a probabilistic model by
//! averaging member posteriors, so it can drive UEI's index-point scoring
//! like any other [`Classifier`].

use uei_types::{DataPoint, Label, Result, Rng, UeiError};

use crate::model::{Classifier, EstimatorKind};
use crate::strategy::QueryStrategy;

/// A committee of independently trained classifiers.
pub struct Committee {
    members: Vec<Box<dyn Classifier>>,
    dims: usize,
}

impl Committee {
    /// Trains `size` members of `kind` on bootstrap resamples of
    /// `examples`. Resamples are re-drawn until they contain both classes
    /// (guaranteed to terminate since the source set contains both).
    pub fn train(
        kind: EstimatorKind,
        size: usize,
        examples: &[(Vec<f64>, Label)],
        seed: u64,
    ) -> Result<Committee> {
        if size < 2 {
            return Err(UeiError::invalid_config("a committee needs at least 2 members"));
        }
        crate::model::check_two_classes(examples)?;
        let dims = examples[0].0.len();
        let mut rng = Rng::new(seed);
        let mut members = Vec::with_capacity(size);
        for _ in 0..size {
            let resample = loop {
                let sample: Vec<(Vec<f64>, Label)> = (0..examples.len())
                    .map(|_| examples[rng.below_usize(examples.len())].clone())
                    .collect();
                let has_pos = sample.iter().any(|(_, l)| l.is_positive());
                let has_neg = sample.iter().any(|(_, l)| !l.is_positive());
                if has_pos && has_neg {
                    break sample;
                }
            };
            members.push(kind.train(&resample)?);
        }
        Ok(Committee { members, dims })
    }

    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }

    /// Vote-entropy disagreement on `x`, in bits (0 = unanimous, 1 = split).
    pub fn vote_entropy(&self, x: &[f64]) -> f64 {
        let votes_pos =
            self.members.iter().filter(|m| m.predict(x) == Label::Positive).count() as f64;
        let n = self.members.len() as f64;
        let p = votes_pos / n;
        let term = |q: f64| if q <= 0.0 { 0.0 } else { -q * q.log2() };
        term(p) + term(1.0 - p)
    }
}

impl Classifier for Committee {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        let sum: f64 = self.members.iter().map(|m| m.predict_proba(x)).sum();
        sum / self.members.len() as f64
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        // Member-major: one batch pass per member (so each member's own
        // scratch reuse and parallelism kick in), accumulated in member
        // order — the same summation order as the scalar path, keeping
        // results bit-identical.
        let mut sums = vec![0.0; xs.len()];
        for member in &self.members {
            let probs = member.predict_proba_batch(xs);
            for (s, p) in sums.iter_mut().zip(&probs) {
                *s += p;
            }
        }
        let n = self.members.len() as f64;
        for s in &mut sums {
            *s /= n;
        }
        sums
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

/// Query-by-committee strategy: select the pool element with maximal vote
/// entropy; ties broken by mean-posterior uncertainty then lowest id.
pub struct QueryByCommittee {
    committee: Committee,
}

impl QueryByCommittee {
    /// Wraps a trained committee as a strategy.
    pub fn new(committee: Committee) -> Self {
        QueryByCommittee { committee }
    }

    /// Access to the underlying committee.
    pub fn committee(&self) -> &Committee {
        &self.committee
    }
}

impl QueryStrategy for QueryByCommittee {
    fn select(&mut self, _model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize> {
        let mut best: Option<(f64, f64, usize)> = None;
        for (i, point) in pool.iter().enumerate() {
            let entropy = self.committee.vote_entropy(&point.values);
            let unc = self.committee.uncertainty(&point.values);
            let candidate = (entropy, unc, i);
            let better = match &best {
                None => true,
                Some((be, bu, bi)) => {
                    entropy > *be
                        || (entropy == *be && unc > *bu)
                        || (entropy == *be && unc == *bu && pool[i].id < pool[*bi].id)
                }
            };
            if better {
                best = Some(candidate);
            }
        }
        best.map(|(_, _, i)| i)
    }

    fn name(&self) -> &'static str {
        "query-by-committee"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(Vec<f64>, Label)> {
        let mut ex = Vec::new();
        for i in 0..10 {
            let t = i as f64 * 0.02;
            ex.push((vec![1.0 + t, 1.0 - t], Label::Positive));
            ex.push((vec![-1.0 - t, -1.0 + t], Label::Negative));
        }
        ex
    }

    #[test]
    fn committee_agrees_on_easy_points() {
        let c = Committee::train(EstimatorKind::Dwknn { k: 3 }, 5, &examples(), 1).unwrap();
        assert_eq!(c.size(), 5);
        assert!(c.predict_proba(&[1.0, 1.0]) > 0.9);
        assert!(c.predict_proba(&[-1.0, -1.0]) < 0.1);
        assert_eq!(c.vote_entropy(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn disagreement_rises_near_boundary() {
        let c = Committee::train(EstimatorKind::Dwknn { k: 1 }, 7, &examples(), 3).unwrap();
        let boundary = c.vote_entropy(&[0.02, -0.02]);
        let deep = c.vote_entropy(&[1.1, 1.0]);
        assert!(boundary >= deep, "boundary {boundary} vs deep {deep}");
    }

    #[test]
    fn qbc_selects_contested_point() {
        let c = Committee::train(EstimatorKind::Dwknn { k: 1 }, 9, &examples(), 5).unwrap();
        let mut qbc = QueryByCommittee::new(c);
        let pool = vec![
            DataPoint::new(0u64, vec![1.05, 1.0]),
            DataPoint::new(1u64, vec![0.0, 0.0]),
            DataPoint::new(2u64, vec![-1.05, -1.0]),
        ];
        let dummy = crate::dwknn::Dwknn::fit(1, &examples()).unwrap();
        assert_eq!(qbc.select(&dummy, &pool), Some(1));
        assert_eq!(qbc.name(), "query-by-committee");
    }

    #[test]
    fn train_validations() {
        assert!(Committee::train(EstimatorKind::default(), 1, &examples(), 1).is_err());
        assert!(Committee::train(EstimatorKind::default(), 3, &[], 1).is_err());
    }

    #[test]
    fn committee_is_deterministic_for_seed() {
        let a = Committee::train(EstimatorKind::Dwknn { k: 3 }, 3, &examples(), 9).unwrap();
        let b = Committee::train(EstimatorKind::Dwknn { k: 3 }, 3, &examples(), 9).unwrap();
        for x in [[0.3, 0.1], [-0.5, 0.9], [1.5, -1.5]] {
            assert_eq!(a.predict_proba(&x), b.predict_proba(&x));
        }
    }
}
