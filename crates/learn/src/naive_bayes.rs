//! Gaussian Naive Bayes.
//!
//! One of the "probability-based predictive models" the paper names as
//! compatible with uncertainty sampling (§2.1). Per class, each feature is
//! modeled as an independent Gaussian; the posterior follows from Bayes'
//! rule in log space.

use uei_types::{Label, Result};

use crate::model::{check_two_classes, Classifier};

/// Variance floor to keep degenerate (constant) features finite.
const VAR_FLOOR: f64 = 1e-9;

#[derive(Debug, Clone)]
struct ClassStats {
    log_prior: f64,
    means: Vec<f64>,
    vars: Vec<f64>,
}

/// A trained Gaussian Naive Bayes classifier.
#[derive(Debug)]
pub struct GaussianNb {
    pos: ClassStats,
    neg: ClassStats,
    dims: usize,
}

fn fit_class(points: &[&Vec<f64>], dims: usize, prior: f64) -> ClassStats {
    let n = points.len() as f64;
    let mut means = vec![0.0; dims];
    for p in points {
        for d in 0..dims {
            means[d] += p[d];
        }
    }
    for m in &mut means {
        *m /= n;
    }
    let mut vars = vec![0.0; dims];
    for p in points {
        for d in 0..dims {
            let diff = p[d] - means[d];
            vars[d] += diff * diff;
        }
    }
    for v in &mut vars {
        *v = (*v / n).max(VAR_FLOOR);
    }
    ClassStats { log_prior: prior.ln(), means, vars }
}

impl ClassStats {
    fn log_likelihood(&self, x: &[f64]) -> f64 {
        let mut ll = self.log_prior;
        for d in 0..x.len() {
            let var = self.vars[d];
            let diff = x[d] - self.means[d];
            ll += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        ll
    }
}

impl GaussianNb {
    /// Fits Gaussian NB on `(point, label)` examples (both classes required).
    pub fn fit(examples: &[(Vec<f64>, Label)]) -> Result<GaussianNb> {
        check_two_classes(examples)?;
        let dims = examples[0].0.len();
        let pos_points: Vec<&Vec<f64>> =
            examples.iter().filter(|(_, l)| l.is_positive()).map(|(x, _)| x).collect();
        let neg_points: Vec<&Vec<f64>> =
            examples.iter().filter(|(_, l)| !l.is_positive()).map(|(x, _)| x).collect();
        let n = examples.len() as f64;
        Ok(GaussianNb {
            pos: fit_class(&pos_points, dims, pos_points.len() as f64 / n),
            neg: fit_class(&neg_points, dims, neg_points.len() as f64 / n),
            dims,
        })
    }
}

impl Classifier for GaussianNb {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        if x.len() != self.dims {
            return 0.5;
        }
        let lp = self.pos.log_likelihood(x);
        let ln = self.neg.log_likelihood(x);
        // Numerically stable sigmoid of the log-odds.
        let log_odds = lp - ln;
        if log_odds >= 0.0 {
            1.0 / (1.0 + (-log_odds).exp())
        } else {
            let e = log_odds.exp();
            e / (1.0 + e)
        }
    }

    /// NB scoring is a handful of flops per query, so rayon fan-out only
    /// pays off on much larger batches than the generic default: the
    /// scoring bench measured 0.57× at 256 points and break-even near 4096.
    fn parallel_batch_threshold(&self) -> usize {
        8192
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Rng;

    fn gaussian_clusters(seed: u64, n: usize) -> Vec<(Vec<f64>, Label)> {
        let mut rng = Rng::new(seed);
        let mut ex = Vec::new();
        for _ in 0..n {
            ex.push((vec![rng.normal(3.0, 0.5), rng.normal(3.0, 0.5)], Label::Positive));
            ex.push((vec![rng.normal(-3.0, 0.5), rng.normal(-3.0, 0.5)], Label::Negative));
        }
        ex
    }

    #[test]
    fn separates_gaussian_clusters() {
        let model = GaussianNb::fit(&gaussian_clusters(1, 100)).unwrap();
        assert!(model.predict_proba(&[3.0, 3.0]) > 0.99);
        assert!(model.predict_proba(&[-3.0, -3.0]) < 0.01);
        let mid = model.predict_proba(&[0.0, 0.0]);
        assert!((0.05..=0.95).contains(&mid), "midpoint proba {mid}");
    }

    #[test]
    fn probability_bounds_under_extreme_inputs() {
        let model = GaussianNb::fit(&gaussian_clusters(2, 50)).unwrap();
        for x in [-1e6, -10.0, 0.0, 10.0, 1e6] {
            let p = model.predict_proba(&[x, x]);
            assert!((0.0..=1.0).contains(&p), "p={p} at {x}");
            assert!(p.is_finite());
        }
    }

    #[test]
    fn constant_feature_does_not_blow_up() {
        let ex = vec![
            (vec![1.0, 5.0], Label::Positive),
            (vec![2.0, 5.0], Label::Positive),
            (vec![-1.0, 5.0], Label::Negative),
            (vec![-2.0, 5.0], Label::Negative),
        ];
        let model = GaussianNb::fit(&ex).unwrap();
        let p = model.predict_proba(&[1.5, 5.0]);
        assert!(p.is_finite() && p > 0.5);
    }

    #[test]
    fn priors_shift_the_boundary() {
        // 9:1 positive prior pushes ambiguous points positive.
        let mut ex = Vec::new();
        for i in 0..9 {
            ex.push((vec![1.0 + 0.1 * i as f64], Label::Positive));
        }
        ex.push((vec![-1.0], Label::Negative));
        let model = GaussianNb::fit(&ex).unwrap();
        assert!(model.predict_proba(&[0.3]) > 0.5);
    }

    #[test]
    fn wrong_dims_returns_maximal_uncertainty() {
        let model = GaussianNb::fit(&gaussian_clusters(3, 10)).unwrap();
        assert_eq!(model.predict_proba(&[0.0]), 0.5);
    }

    #[test]
    fn fit_requires_two_classes() {
        let one = vec![(vec![0.0], Label::Positive)];
        assert!(GaussianNb::fit(&one).is_err());
        assert!(GaussianNb::fit(&[]).is_err());
    }
}
