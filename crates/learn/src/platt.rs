//! Platt scaling: calibrating a margin score into a probability.
//!
//! A raw SVM decision value is not a probability; uncertainty sampling
//! needs `P(y | x)`. Platt scaling fits a sigmoid `P(y=1|s) =
//! 1/(1+exp(A·s+B))` to `(score, label)` pairs by regularized maximum
//! likelihood. This implementation follows the robust Newton method of
//! Lin, Lin & Weng, "A note on Platt's probabilistic outputs for support
//! vector machines" (2007).

use uei_types::Label;

/// A fitted sigmoid calibration `P(y=1|s) = 1/(1+exp(A·s+B))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlattScaler {
    /// Slope (negative for sensible calibrations: larger score ⇒ larger
    /// probability).
    pub a: f64,
    /// Intercept.
    pub b: f64,
}

impl PlattScaler {
    /// Fits the sigmoid on `(decision score, label)` pairs.
    pub fn fit(scores: &[f64], labels: &[Label]) -> PlattScaler {
        assert_eq!(scores.len(), labels.len(), "scores and labels must align");
        let n = scores.len();
        let prior1 = labels.iter().filter(|l| l.is_positive()).count() as f64;
        let prior0 = n as f64 - prior1;

        // Regularized targets (avoid 0/1 exactly).
        let hi_target = (prior1 + 1.0) / (prior1 + 2.0);
        let lo_target = 1.0 / (prior0 + 2.0);
        let targets: Vec<f64> =
            labels.iter().map(|l| if l.is_positive() { hi_target } else { lo_target }).collect();

        let mut a = 0.0f64;
        let mut b = ((prior0 + 1.0) / (prior1 + 1.0)).ln();
        let min_step = 1e-10;
        let sigma = 1e-12;

        let fval = |a: f64, b: f64| -> f64 {
            let mut f = 0.0;
            for i in 0..n {
                let fapb = scores[i] * a + b;
                // Cross-entropy written to avoid overflow.
                if fapb >= 0.0 {
                    f += targets[i] * fapb + (1.0 + (-fapb).exp()).ln();
                } else {
                    f += (targets[i] - 1.0) * fapb + (1.0 + fapb.exp()).ln();
                }
            }
            f
        };

        let mut f = fval(a, b);
        for _ in 0..100 {
            // Gradient and Hessian.
            let (mut h11, mut h22, mut h21) = (sigma, sigma, 0.0);
            let (mut g1, mut g2) = (0.0, 0.0);
            for i in 0..n {
                let fapb = scores[i] * a + b;
                let (p, q) = if fapb >= 0.0 {
                    let e = (-fapb).exp();
                    (e / (1.0 + e), 1.0 / (1.0 + e))
                } else {
                    let e = fapb.exp();
                    (1.0 / (1.0 + e), e / (1.0 + e))
                };
                let d2 = p * q;
                h11 += scores[i] * scores[i] * d2;
                h22 += d2;
                h21 += scores[i] * d2;
                let d1 = targets[i] - p;
                g1 += scores[i] * d1;
                g2 += d1;
            }
            if g1.abs() < 1e-5 && g2.abs() < 1e-5 {
                break;
            }
            // Newton direction.
            let det = h11 * h22 - h21 * h21;
            let da = -(h22 * g1 - h21 * g2) / det;
            let db = -(-h21 * g1 + h11 * g2) / det;
            let gd = g1 * da + g2 * db;
            // Backtracking line search.
            let mut step = 1.0;
            let mut improved = false;
            while step >= min_step {
                let new_a = a + step * da;
                let new_b = b + step * db;
                let new_f = fval(new_a, new_b);
                if new_f < f + 1e-4 * step * gd {
                    a = new_a;
                    b = new_b;
                    f = new_f;
                    improved = true;
                    break;
                }
                step /= 2.0;
            }
            if !improved {
                break;
            }
        }
        PlattScaler { a, b }
    }

    /// Calibrated probability for a raw decision score.
    pub fn probability(&self, score: f64) -> f64 {
        let fapb = score * self.a + self.b;
        if fapb >= 0.0 {
            let e = (-fapb).exp();
            e / (1.0 + e)
        } else {
            1.0 / (1.0 + fapb.exp())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<f64>, Vec<Label>) {
        let scores = vec![-3.0, -2.0, -1.5, -1.0, 1.0, 1.5, 2.0, 3.0];
        let labels = vec![
            Label::Negative,
            Label::Negative,
            Label::Negative,
            Label::Negative,
            Label::Positive,
            Label::Positive,
            Label::Positive,
            Label::Positive,
        ];
        (scores, labels)
    }

    #[test]
    fn calibration_is_monotone_increasing_in_score() {
        let (scores, labels) = separable();
        let platt = PlattScaler::fit(&scores, &labels);
        let mut prev = platt.probability(-5.0);
        for s in [-2.0, -0.5, 0.0, 0.5, 2.0, 5.0] {
            let p = platt.probability(s);
            assert!(p >= prev, "probability must increase with score");
            prev = p;
        }
    }

    #[test]
    fn separable_scores_calibrate_confidently() {
        let (scores, labels) = separable();
        let platt = PlattScaler::fit(&scores, &labels);
        assert!(platt.probability(3.0) > 0.8);
        assert!(platt.probability(-3.0) < 0.2);
        let mid = platt.probability(0.0);
        assert!((0.2..=0.8).contains(&mid), "midpoint {mid}");
    }

    #[test]
    fn probabilities_bounded() {
        let (scores, labels) = separable();
        let platt = PlattScaler::fit(&scores, &labels);
        for s in [-1e9, -100.0, 0.0, 100.0, 1e9] {
            let p = platt.probability(s);
            assert!((0.0..=1.0).contains(&p) && p.is_finite(), "s={s} p={p}");
        }
    }

    #[test]
    fn noisy_overlap_stays_moderate() {
        // Scores barely informative: probabilities should stay away from
        // the extremes.
        let scores = vec![-0.1, 0.1, -0.05, 0.05, 0.0, 0.02, -0.02, 0.07];
        let labels = vec![
            Label::Positive,
            Label::Negative,
            Label::Negative,
            Label::Positive,
            Label::Positive,
            Label::Negative,
            Label::Positive,
            Label::Negative,
        ];
        let platt = PlattScaler::fit(&scores, &labels);
        let p = platt.probability(0.05);
        assert!((0.2..=0.8).contains(&p), "uninformative scores gave {p}");
    }

    #[test]
    fn imbalanced_priors_shift_intercept() {
        // Mostly negative data: an uninformative score should lean negative.
        let scores = vec![0.0; 10];
        let mut labels = vec![Label::Negative; 9];
        labels.push(Label::Positive);
        let platt = PlattScaler::fit(&scores, &labels);
        assert!(platt.probability(0.0) < 0.5);
    }
}
