//! Min–max feature scaling.
//!
//! Distance-based estimators (DWKNN, kNN) are meaningless over raw SDSS
//! attributes whose domains differ by orders of magnitude (`rowc` spans
//! 0–2048 while `dec` spans −90–90): the widest attribute dominates every
//! distance. All models and index points in this workspace therefore
//! operate on coordinates mapped to the unit cube via the schema's domains.

use uei_types::{PointMatrix, Result, Schema, UeiError};

/// A per-dimension linear map onto `[0, 1]`.
///
/// ```
/// use uei_learn::MinMaxScaler;
/// use uei_types::Schema;
///
/// let scaler = MinMaxScaler::from_schema(&Schema::sdss());
/// let z = scaler.transform(&[1024.0, 0.0, 180.0, 0.0, 500.0]).unwrap();
/// assert_eq!(z[0], 0.5); // rowc domain is 0..2048
/// assert_eq!(z[3], 0.5); // dec domain is -90..90
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxScaler {
    /// Builds a scaler from explicit bounds.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<MinMaxScaler> {
        if lo.len() != hi.len() {
            return Err(UeiError::DimensionMismatch { expected: lo.len(), actual: hi.len() });
        }
        if lo.is_empty() {
            return Err(UeiError::invalid_config("scaler needs at least one dimension"));
        }
        for d in 0..lo.len() {
            if !(lo[d] <= hi[d]) {
                return Err(UeiError::invalid_config(format!("scaler bounds inverted in dim {d}")));
            }
        }
        Ok(MinMaxScaler { lo, hi })
    }

    /// Builds a scaler from a schema's attribute domains.
    pub fn from_schema(schema: &Schema) -> MinMaxScaler {
        let lo = schema.attributes().iter().map(|a| a.min).collect();
        let hi = schema.attributes().iter().map(|a| a.max).collect();
        MinMaxScaler { lo, hi }
    }

    /// Fits bounds from data (useful when the schema is unknown).
    pub fn fit(points: &[Vec<f64>]) -> Result<MinMaxScaler> {
        let first = points
            .first()
            .ok_or_else(|| UeiError::invalid_config("cannot fit scaler on empty data"))?;
        let mut lo = first.clone();
        let mut hi = first.clone();
        for p in points {
            if p.len() != lo.len() {
                return Err(UeiError::DimensionMismatch { expected: lo.len(), actual: p.len() });
            }
            for d in 0..p.len() {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        MinMaxScaler::new(lo, hi)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Maps a point into the unit cube. Constant dimensions map to 0.5.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>> {
        let mut out = Vec::with_capacity(x.len());
        self.transform_into(x, &mut out)?;
        Ok(out)
    }

    /// [`Self::transform`] into a caller-provided buffer (cleared first) —
    /// the allocation-free form the batch scoring paths use.
    pub fn transform_into(&self, x: &[f64], out: &mut Vec<f64>) -> Result<()> {
        if x.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: x.len() });
        }
        out.clear();
        out.extend((0..x.len()).map(|d| {
            let w = self.hi[d] - self.lo[d];
            if w > 0.0 {
                (x[d] - self.lo[d]) / w
            } else {
                0.5
            }
        }));
        Ok(())
    }

    /// Maps a unit-cube point back to the original space.
    pub fn inverse(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: z.len() });
        }
        Ok((0..z.len()).map(|d| self.lo[d] + z[d] * (self.hi[d] - self.lo[d])).collect())
    }
}

/// A classifier that operates on raw coordinates by scaling them into the
/// unit cube before delegating to an inner model.
///
/// Everything in the exploration loop (query strategies, index-point
/// scoring, exhaustive scans) passes raw attribute values; the scaling is
/// an internal concern of distance-based estimators. Training data is
/// scaled once at fit time, queries on every call.
pub struct ScaledClassifier {
    inner: Box<dyn crate::model::Classifier>,
    scaler: MinMaxScaler,
}

impl ScaledClassifier {
    /// Scales `examples` and trains an inner model of `kind` on them.
    pub fn train(
        kind: crate::model::EstimatorKind,
        scaler: MinMaxScaler,
        examples: &[(Vec<f64>, uei_types::Label)],
    ) -> Result<ScaledClassifier> {
        let scaled: Result<Vec<(Vec<f64>, uei_types::Label)>> =
            examples.iter().map(|(x, l)| Ok((scaler.transform(x)?, *l))).collect();
        let inner = kind.train(&scaled?)?;
        Ok(ScaledClassifier { inner, scaler })
    }

    /// Wraps an already trained model (which must expect scaled inputs).
    pub fn wrap(inner: Box<dyn crate::model::Classifier>, scaler: MinMaxScaler) -> Self {
        ScaledClassifier { inner, scaler }
    }

    /// The scaler in use.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }

    /// Scales a batch into one flat row-major matrix plus a validity mask
    /// (`valid[i]` is false for rows of the wrong dimensionality, which
    /// score the 0.5 fallback). Scaling is element-wise, so filling the
    /// matrix sequentially produces bit-identical coordinates to any
    /// per-row schedule; the expensive part — inner-model scoring — still
    /// parallelizes downstream.
    fn scale_batch(&self, xs: &[&[f64]]) -> (PointMatrix, Vec<bool>) {
        let dims = self.scaler.dims();
        let mut matrix = PointMatrix::with_capacity(xs.len(), dims);
        let mut valid = Vec::with_capacity(xs.len());
        let mut buf = Vec::with_capacity(dims);
        for x in xs {
            let ok =
                self.scaler.transform_into(x, &mut buf).is_ok() && matrix.push_row(&buf).is_ok();
            valid.push(ok);
        }
        (matrix, valid)
    }
}

impl crate::model::Classifier for ScaledClassifier {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        match self.scaler.transform(x) {
            Ok(z) => self.inner.predict_proba(&z),
            Err(_) => 0.5,
        }
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        // Scale into one flat matrix, score the valid rows through the
        // inner model's batch path, and splice the 0.5 fallback back in for
        // rows of the wrong dimensionality.
        let (matrix, valid) = self.scale_batch(xs);
        let refs = matrix.row_refs();
        let mut probs = self.inner.predict_proba_batch(&refs).into_iter();
        valid
            .iter()
            .map(|&ok| if ok { probs.next().expect("one probability per valid row") } else { 0.5 })
            .collect()
    }

    fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> crate::delta::ScoredBatch {
        // Same splicing as the plain batch path, carrying the inner radii
        // through when present: invalid rows get the 0.5 fallback with an
        // infinite radius (always dirty), so the delta stays sound for them.
        let (matrix, valid) = self.scale_batch(xs);
        let refs = matrix.row_refs();
        let inner = self.inner.predict_proba_batch_tracked(&refs);
        let mut probs_it = inner.probs.into_iter();
        let probs: Vec<f64> = valid
            .iter()
            .map(
                |&ok| {
                    if ok {
                        probs_it.next().expect("one probability per valid row")
                    } else {
                        0.5
                    }
                },
            )
            .collect();
        let radii2 = inner.radii2.map(|inner_radii| {
            let mut radii_it = inner_radii.into_iter();
            valid
                .iter()
                .map(|&ok| {
                    if ok {
                        radii_it.next().expect("one radius per valid row")
                    } else {
                        f64::INFINITY
                    }
                })
                .collect()
        });
        crate::delta::ScoredBatch { probs, radii2 }
    }

    fn model_delta(
        &self,
        points: &[&[f64]],
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> crate::delta::ModelDelta {
        // Radii were produced by the inner model in *scaled* space, so the
        // geometry test must run there too. An added example that cannot be
        // transformed leaves the influence source unknown — conservative
        // global delta; a *point* that cannot be transformed is merely
        // marked dirty on its own (it always scores the 0.5 fallback).
        if radii2.len() != points.len() {
            return crate::delta::ModelDelta::Global;
        }
        let mut scaled_added = Vec::with_capacity(added.len());
        for a in added {
            match self.scaler.transform(a) {
                Ok(z) => scaled_added.push(z),
                Err(_) => return crate::delta::ModelDelta::Global,
            }
        }
        let mut valid_idx = Vec::with_capacity(points.len());
        let mut scaled_points = PointMatrix::with_capacity(points.len(), self.scaler.dims());
        let mut valid_radii = Vec::with_capacity(points.len());
        let mut buf = Vec::with_capacity(self.scaler.dims());
        for (i, p) in points.iter().enumerate() {
            if self.scaler.transform_into(p, &mut buf).is_ok()
                && scaled_points.push_row(&buf).is_ok()
            {
                valid_idx.push(i);
                valid_radii.push(radii2[i]);
            }
        }
        let added_refs: Vec<&[f64]> = scaled_added.iter().map(|z| z.as_slice()).collect();
        match self.inner.model_delta_matrix(&scaled_points, &valid_radii, &added_refs, margin) {
            crate::delta::ModelDelta::Global => crate::delta::ModelDelta::Global,
            crate::delta::ModelDelta::Dirty(sub) => {
                let mut mask = vec![true; points.len()];
                for (j, &i) in valid_idx.iter().enumerate() {
                    mask[i] = sub[j];
                }
                crate::delta::ModelDelta::Dirty(mask)
            }
        }
    }

    fn model_delta_matrix(
        &self,
        points: &PointMatrix,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> crate::delta::ModelDelta {
        // The matrix guarantees uniform dimensionality, so either every row
        // transforms or none does — no per-row validity splicing needed.
        if radii2.len() != points.len() {
            return crate::delta::ModelDelta::Global;
        }
        if points.dims() != self.scaler.dims() && !points.is_empty() {
            return crate::delta::ModelDelta::Global;
        }
        let mut scaled_added = Vec::with_capacity(added.len());
        for a in added {
            match self.scaler.transform(a) {
                Ok(z) => scaled_added.push(z),
                Err(_) => return crate::delta::ModelDelta::Global,
            }
        }
        let mut scaled = PointMatrix::with_capacity(points.len(), self.scaler.dims());
        let mut buf = Vec::with_capacity(self.scaler.dims());
        for row in points.rows() {
            if self.scaler.transform_into(row, &mut buf).is_err() || scaled.push_row(&buf).is_err()
            {
                return crate::delta::ModelDelta::Global;
            }
        }
        let added_refs: Vec<&[f64]> = scaled_added.iter().map(|z| z.as_slice()).collect();
        self.inner.model_delta_matrix(&scaled, radii2, &added_refs, margin)
    }

    fn model_delta_matrix_range(
        &self,
        points: &PointMatrix,
        rows: std::ops::Range<usize>,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> crate::delta::ModelDelta {
        // Same geometry-in-scaled-space argument as the full-matrix form,
        // but only the range's rows are transformed: the shard-parallel
        // rescoring path calls this once per shard, so the scaling work is
        // proportional to the shard, not the whole plane. A row that cannot
        // be transformed degrades this range to Global, which the caller
        // escalates to a full rescore — exactly what the full-matrix form
        // would have done for the whole plane.
        if rows.start > rows.end || rows.end > points.len() || radii2.len() != rows.len() {
            return crate::delta::ModelDelta::Global;
        }
        if points.dims() != self.scaler.dims() && !points.is_empty() {
            return crate::delta::ModelDelta::Global;
        }
        let mut scaled_added = Vec::with_capacity(added.len());
        for a in added {
            match self.scaler.transform(a) {
                Ok(z) => scaled_added.push(z),
                Err(_) => return crate::delta::ModelDelta::Global,
            }
        }
        let mut scaled = PointMatrix::with_capacity(rows.len(), self.scaler.dims());
        let mut buf = Vec::with_capacity(self.scaler.dims());
        for i in rows {
            if self.scaler.transform_into(points.row(i), &mut buf).is_err()
                || scaled.push_row(&buf).is_err()
            {
                return crate::delta::ModelDelta::Global;
            }
        }
        let added_refs: Vec<&[f64]> = scaled_added.iter().map(|z| z.as_slice()).collect();
        let len = scaled.len();
        self.inner.model_delta_matrix_range(&scaled, 0..len, radii2, &added_refs, margin)
    }

    fn influence_position(&self, x: &[f64]) -> Option<Vec<f64>> {
        // The inner model's radii live in scaled space, so the influence
        // position is the scaled image; a raw point the scaler rejects has
        // no known position (the delta path degrades it to Global / dirty,
        // so pruning against it must be disabled).
        self.scaler.transform(x).ok().and_then(|z| self.inner.influence_position(&z))
    }

    fn training_len(&self) -> Option<usize> {
        self.inner.training_len()
    }

    fn parallel_batch_threshold(&self) -> usize {
        self.inner.parallel_batch_threshold()
    }

    fn dims(&self) -> usize {
        self.scaler.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Classifier, EstimatorKind};
    use uei_types::{Label, Schema};

    #[test]
    fn transform_and_inverse_round_trip() {
        let s = MinMaxScaler::new(vec![0.0, -90.0], vec![2048.0, 90.0]).unwrap();
        let x = vec![1024.0, 45.0];
        let z = s.transform(&x).unwrap();
        assert_eq!(z, vec![0.5, 0.75]);
        let back = s.inverse(&z).unwrap();
        assert!((back[0] - x[0]).abs() < 1e-9);
        assert!((back[1] - x[1]).abs() < 1e-9);
    }

    #[test]
    fn from_schema_covers_domains() {
        let s = MinMaxScaler::from_schema(&Schema::sdss());
        assert_eq!(s.dims(), 5);
        let z = s.transform(&[0.0, 2048.0, 180.0, 0.0, 500.0]).unwrap();
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 1.0);
        assert_eq!(z[2], 0.5);
        assert_eq!(z[3], 0.5);
        assert_eq!(z[4], 0.5);
    }

    #[test]
    fn fit_from_data() {
        let pts = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]];
        let s = MinMaxScaler::fit(&pts).unwrap();
        assert_eq!(s.transform(&[1.0, 10.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[3.0, 30.0]).unwrap(), vec![1.0, 1.0]);
        assert!(MinMaxScaler::fit(&[]).is_err());
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let s = MinMaxScaler::new(vec![5.0], vec![5.0]).unwrap();
        assert_eq!(s.transform(&[5.0]).unwrap(), vec![0.5]);
    }

    #[test]
    fn validations() {
        assert!(MinMaxScaler::new(vec![1.0], vec![0.0]).is_err());
        assert!(MinMaxScaler::new(vec![], vec![]).is_err());
        assert!(MinMaxScaler::new(vec![0.0], vec![1.0, 2.0]).is_err());
        let s = MinMaxScaler::new(vec![0.0], vec![1.0]).unwrap();
        assert!(s.transform(&[0.0, 0.0]).is_err());
        assert!(s.inverse(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn out_of_domain_values_extrapolate() {
        let s = MinMaxScaler::new(vec![0.0], vec![10.0]).unwrap();
        assert_eq!(s.transform(&[-5.0]).unwrap(), vec![-0.5]);
        assert_eq!(s.transform(&[20.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn influence_position_is_the_scaled_image() {
        let scaler = MinMaxScaler::new(vec![0.0, 0.0], vec![10.0, 4.0]).unwrap();
        let examples = vec![
            (vec![1.0, 1.0], Label::Negative),
            (vec![9.0, 3.0], Label::Positive),
            (vec![2.0, 3.0], Label::Negative),
            (vec![8.0, 1.0], Label::Positive),
        ];
        let model =
            ScaledClassifier::train(EstimatorKind::Knn { k: 1 }, scaler, &examples).unwrap();
        // The kNN influence radii live in scaled space, so the position is
        // the scaled image of the raw point.
        assert_eq!(model.influence_position(&[5.0, 1.0]), Some(vec![0.5, 0.25]));
        // A point the scaler rejects has no position (and the delta path
        // would degrade it to Global — pruning against it must not happen).
        assert!(model.influence_position(&[5.0]).is_none());
    }

    #[test]
    fn scaled_classifier_handles_wide_domains() {
        // rowc spans 0..2048, dec −90..90: unscaled kNN would be dominated
        // by rowc; the wrapper makes both attributes count.
        let scaler = MinMaxScaler::new(vec![0.0, -90.0], vec![2048.0, 90.0]).unwrap();
        let examples = vec![
            (vec![1000.0, 80.0], Label::Positive),
            (vec![1010.0, 85.0], Label::Positive),
            (vec![1000.0, -80.0], Label::Negative),
            (vec![1010.0, -85.0], Label::Negative),
        ];
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 3 }, scaler, &examples).unwrap();
        assert_eq!(model.dims(), 2);
        assert_eq!(model.predict(&[1005.0, 82.0]), Label::Positive);
        assert_eq!(model.predict(&[1005.0, -82.0]), Label::Negative);
    }

    #[test]
    fn tracked_and_delta_forward_through_scaling() {
        let scaler = MinMaxScaler::new(vec![0.0, -90.0], vec![2048.0, 90.0]).unwrap();
        let examples = vec![
            (vec![1000.0, 80.0], Label::Positive),
            (vec![1010.0, 85.0], Label::Positive),
            (vec![1000.0, -80.0], Label::Negative),
            (vec![1010.0, -85.0], Label::Negative),
        ];
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 3 }, scaler, &examples).unwrap();
        let queries: Vec<Vec<f64>> = vec![
            vec![1005.0, 82.0],
            vec![1005.0], // wrong dims: spliced 0.5 / infinite radius
            vec![1005.0, -82.0],
        ];
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let plain = model.predict_proba_batch(&refs);
        let tracked = model.predict_proba_batch_tracked(&refs);
        for (a, b) in plain.iter().zip(&tracked.probs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let radii2 = tracked.radii2.expect("inner DWKNN reports radii");
        assert!(radii2[0].is_finite());
        assert!(radii2[1].is_infinite(), "invalid rows must stay always-dirty");
        assert!(radii2[2].is_finite());

        // A raw-space added point yields a spatial delta (geometry runs in
        // scaled space); the invalid row is dirty through its ∞ radius.
        let added = [vec![1005.0, 83.0]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        match model.model_delta(&refs, &radii2, &added_refs, 0.0) {
            crate::delta::ModelDelta::Dirty(mask) => assert!(mask[1]),
            crate::delta::ModelDelta::Global => panic!("scaled kNN delta should be spatial"),
        }
        // An added point the scaler cannot transform degrades to Global.
        let ragged = [vec![1005.0]];
        let ragged_refs: Vec<&[f64]> = ragged.iter().map(|p| p.as_slice()).collect();
        assert_eq!(
            model.model_delta(&refs, &radii2, &ragged_refs, 0.0),
            crate::delta::ModelDelta::Global
        );
    }

    #[test]
    fn scaled_classifier_wrong_dims_is_uncertain() {
        let scaler = MinMaxScaler::new(vec![0.0], vec![1.0]).unwrap();
        let examples = vec![(vec![0.1], Label::Negative), (vec![0.9], Label::Positive)];
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 1 }, scaler, &examples).unwrap();
        assert_eq!(model.predict_proba(&[0.5, 0.5]), 0.5);
    }
}
