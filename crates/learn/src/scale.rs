//! Min–max feature scaling.
//!
//! Distance-based estimators (DWKNN, kNN) are meaningless over raw SDSS
//! attributes whose domains differ by orders of magnitude (`rowc` spans
//! 0–2048 while `dec` spans −90–90): the widest attribute dominates every
//! distance. All models and index points in this workspace therefore
//! operate on coordinates mapped to the unit cube via the schema's domains.

use uei_types::{Result, Schema, UeiError};

/// A per-dimension linear map onto `[0, 1]`.
///
/// ```
/// use uei_learn::MinMaxScaler;
/// use uei_types::Schema;
///
/// let scaler = MinMaxScaler::from_schema(&Schema::sdss());
/// let z = scaler.transform(&[1024.0, 0.0, 180.0, 0.0, 500.0]).unwrap();
/// assert_eq!(z[0], 0.5); // rowc domain is 0..2048
/// assert_eq!(z[3], 0.5); // dec domain is -90..90
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl MinMaxScaler {
    /// Builds a scaler from explicit bounds.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<MinMaxScaler> {
        if lo.len() != hi.len() {
            return Err(UeiError::DimensionMismatch { expected: lo.len(), actual: hi.len() });
        }
        if lo.is_empty() {
            return Err(UeiError::invalid_config("scaler needs at least one dimension"));
        }
        for d in 0..lo.len() {
            if !(lo[d] <= hi[d]) {
                return Err(UeiError::invalid_config(format!("scaler bounds inverted in dim {d}")));
            }
        }
        Ok(MinMaxScaler { lo, hi })
    }

    /// Builds a scaler from a schema's attribute domains.
    pub fn from_schema(schema: &Schema) -> MinMaxScaler {
        let lo = schema.attributes().iter().map(|a| a.min).collect();
        let hi = schema.attributes().iter().map(|a| a.max).collect();
        MinMaxScaler { lo, hi }
    }

    /// Fits bounds from data (useful when the schema is unknown).
    pub fn fit(points: &[Vec<f64>]) -> Result<MinMaxScaler> {
        let first = points
            .first()
            .ok_or_else(|| UeiError::invalid_config("cannot fit scaler on empty data"))?;
        let mut lo = first.clone();
        let mut hi = first.clone();
        for p in points {
            if p.len() != lo.len() {
                return Err(UeiError::DimensionMismatch { expected: lo.len(), actual: p.len() });
            }
            for d in 0..p.len() {
                lo[d] = lo[d].min(p[d]);
                hi[d] = hi[d].max(p[d]);
            }
        }
        MinMaxScaler::new(lo, hi)
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Maps a point into the unit cube. Constant dimensions map to 0.5.
    pub fn transform(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: x.len() });
        }
        Ok((0..x.len())
            .map(|d| {
                let w = self.hi[d] - self.lo[d];
                if w > 0.0 {
                    (x[d] - self.lo[d]) / w
                } else {
                    0.5
                }
            })
            .collect())
    }

    /// Maps a unit-cube point back to the original space.
    pub fn inverse(&self, z: &[f64]) -> Result<Vec<f64>> {
        if z.len() != self.dims() {
            return Err(UeiError::DimensionMismatch { expected: self.dims(), actual: z.len() });
        }
        Ok((0..z.len()).map(|d| self.lo[d] + z[d] * (self.hi[d] - self.lo[d])).collect())
    }
}

/// A classifier that operates on raw coordinates by scaling them into the
/// unit cube before delegating to an inner model.
///
/// Everything in the exploration loop (query strategies, index-point
/// scoring, exhaustive scans) passes raw attribute values; the scaling is
/// an internal concern of distance-based estimators. Training data is
/// scaled once at fit time, queries on every call.
pub struct ScaledClassifier {
    inner: Box<dyn crate::model::Classifier>,
    scaler: MinMaxScaler,
}

impl ScaledClassifier {
    /// Scales `examples` and trains an inner model of `kind` on them.
    pub fn train(
        kind: crate::model::EstimatorKind,
        scaler: MinMaxScaler,
        examples: &[(Vec<f64>, uei_types::Label)],
    ) -> Result<ScaledClassifier> {
        let scaled: Result<Vec<(Vec<f64>, uei_types::Label)>> =
            examples.iter().map(|(x, l)| Ok((scaler.transform(x)?, *l))).collect();
        let inner = kind.train(&scaled?)?;
        Ok(ScaledClassifier { inner, scaler })
    }

    /// Wraps an already trained model (which must expect scaled inputs).
    pub fn wrap(inner: Box<dyn crate::model::Classifier>, scaler: MinMaxScaler) -> Self {
        ScaledClassifier { inner, scaler }
    }

    /// The scaler in use.
    pub fn scaler(&self) -> &MinMaxScaler {
        &self.scaler
    }
}

impl crate::model::Classifier for ScaledClassifier {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        match self.scaler.transform(x) {
            Ok(z) => self.inner.predict_proba(&z),
            Err(_) => 0.5,
        }
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        // Scale every valid row (in parallel for large batches), score the
        // valid ones through the inner model's batch path, and splice the
        // 0.5 fallback back in for rows of the wrong dimensionality.
        let transformed = crate::batch::map_batch(xs, |x| self.scaler.transform(x).ok());
        let valid: Vec<&[f64]> = transformed.iter().flatten().map(|z| z.as_slice()).collect();
        let mut probs = self.inner.predict_proba_batch(&valid).into_iter();
        transformed
            .iter()
            .map(|t| match t {
                Some(_) => probs.next().expect("one probability per valid row"),
                None => 0.5,
            })
            .collect()
    }

    fn dims(&self) -> usize {
        self.scaler.dims()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Classifier, EstimatorKind};
    use uei_types::{Label, Schema};

    #[test]
    fn transform_and_inverse_round_trip() {
        let s = MinMaxScaler::new(vec![0.0, -90.0], vec![2048.0, 90.0]).unwrap();
        let x = vec![1024.0, 45.0];
        let z = s.transform(&x).unwrap();
        assert_eq!(z, vec![0.5, 0.75]);
        let back = s.inverse(&z).unwrap();
        assert!((back[0] - x[0]).abs() < 1e-9);
        assert!((back[1] - x[1]).abs() < 1e-9);
    }

    #[test]
    fn from_schema_covers_domains() {
        let s = MinMaxScaler::from_schema(&Schema::sdss());
        assert_eq!(s.dims(), 5);
        let z = s.transform(&[0.0, 2048.0, 180.0, 0.0, 500.0]).unwrap();
        assert_eq!(z[0], 0.0);
        assert_eq!(z[1], 1.0);
        assert_eq!(z[2], 0.5);
        assert_eq!(z[3], 0.5);
        assert_eq!(z[4], 0.5);
    }

    #[test]
    fn fit_from_data() {
        let pts = vec![vec![1.0, 10.0], vec![3.0, 30.0], vec![2.0, 20.0]];
        let s = MinMaxScaler::fit(&pts).unwrap();
        assert_eq!(s.transform(&[1.0, 10.0]).unwrap(), vec![0.0, 0.0]);
        assert_eq!(s.transform(&[3.0, 30.0]).unwrap(), vec![1.0, 1.0]);
        assert!(MinMaxScaler::fit(&[]).is_err());
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let s = MinMaxScaler::new(vec![5.0], vec![5.0]).unwrap();
        assert_eq!(s.transform(&[5.0]).unwrap(), vec![0.5]);
    }

    #[test]
    fn validations() {
        assert!(MinMaxScaler::new(vec![1.0], vec![0.0]).is_err());
        assert!(MinMaxScaler::new(vec![], vec![]).is_err());
        assert!(MinMaxScaler::new(vec![0.0], vec![1.0, 2.0]).is_err());
        let s = MinMaxScaler::new(vec![0.0], vec![1.0]).unwrap();
        assert!(s.transform(&[0.0, 0.0]).is_err());
        assert!(s.inverse(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn out_of_domain_values_extrapolate() {
        let s = MinMaxScaler::new(vec![0.0], vec![10.0]).unwrap();
        assert_eq!(s.transform(&[-5.0]).unwrap(), vec![-0.5]);
        assert_eq!(s.transform(&[20.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn scaled_classifier_handles_wide_domains() {
        // rowc spans 0..2048, dec −90..90: unscaled kNN would be dominated
        // by rowc; the wrapper makes both attributes count.
        let scaler = MinMaxScaler::new(vec![0.0, -90.0], vec![2048.0, 90.0]).unwrap();
        let examples = vec![
            (vec![1000.0, 80.0], Label::Positive),
            (vec![1010.0, 85.0], Label::Positive),
            (vec![1000.0, -80.0], Label::Negative),
            (vec![1010.0, -85.0], Label::Negative),
        ];
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 3 }, scaler, &examples).unwrap();
        assert_eq!(model.dims(), 2);
        assert_eq!(model.predict(&[1005.0, 82.0]), Label::Positive);
        assert_eq!(model.predict(&[1005.0, -82.0]), Label::Negative);
    }

    #[test]
    fn scaled_classifier_wrong_dims_is_uncertain() {
        let scaler = MinMaxScaler::new(vec![0.0], vec![1.0]).unwrap();
        let examples = vec![(vec![0.1], Label::Negative), (vec![0.9], Label::Positive)];
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 1 }, scaler, &examples).unwrap();
        assert_eq!(model.predict_proba(&[0.5, 0.5]), 0.5);
    }
}
