//! Linear SVM trained with Pegasos, calibrated with Platt scaling.
//!
//! SVMs are the second "probability-based predictive model" the paper names
//! for uncertainty sampling (§2.1). Pegasos (Shalev-Shwartz et al. 2011) is
//! a stochastic sub-gradient solver for the primal hinge-loss objective
//!
//! ```text
//! min_w  λ/2 ‖w‖² + 1/n Σ max(0, 1 − y_i ⟨w, x_i⟩)
//! ```
//!
//! Features are standardized at fit time (zero mean, unit variance) so the
//! step sizes behave across the SDSS-like attribute scales; the raw margin
//! is then mapped to a probability with [`crate::platt::PlattScaler`].

use uei_types::{Label, Result, Rng, UeiError};

use crate::model::{check_two_classes, Classifier};
use crate::platt::PlattScaler;

/// A trained linear SVM with calibrated probabilities.
#[derive(Debug)]
pub struct LinearSvm {
    weights: Vec<f64>,
    bias: f64,
    feature_means: Vec<f64>,
    feature_stds: Vec<f64>,
    platt: PlattScaler,
    dims: usize,
}

impl LinearSvm {
    /// Fits the SVM.
    ///
    /// `epochs` full passes of Pegasos with regularization `lambda`;
    /// `seed` drives the example shuffling. Requires both classes.
    pub fn fit(
        examples: &[(Vec<f64>, Label)],
        epochs: usize,
        lambda: f64,
        seed: u64,
    ) -> Result<LinearSvm> {
        check_two_classes(examples)?;
        if epochs == 0 {
            return Err(UeiError::invalid_config("SVM requires epochs >= 1"));
        }
        if !(lambda > 0.0) {
            return Err(UeiError::invalid_config("SVM requires lambda > 0"));
        }
        let dims = examples[0].0.len();
        let n = examples.len();

        // Standardize features.
        let mut means = vec![0.0; dims];
        for (x, _) in examples {
            for d in 0..dims {
                means[d] += x[d];
            }
        }
        for m in &mut means {
            *m /= n as f64;
        }
        let mut stds = vec![0.0; dims];
        for (x, _) in examples {
            for d in 0..dims {
                let diff = x[d] - means[d];
                stds[d] += diff * diff;
            }
        }
        for s in &mut stds {
            *s = (*s / n as f64).sqrt().max(1e-9);
        }
        let scaled: Vec<(Vec<f64>, f64)> = examples
            .iter()
            .map(|(x, l)| {
                let z: Vec<f64> = (0..dims).map(|d| (x[d] - means[d]) / stds[d]).collect();
                (z, l.as_sign())
            })
            .collect();

        // Pegasos with an (unregularized) bias term.
        let mut w = vec![0.0; dims];
        let mut b = 0.0;
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng::new(seed);
        let mut t = 0u64;
        for _ in 0..epochs {
            rng.shuffle(&mut order);
            for &i in &order {
                t += 1;
                let eta = 1.0 / (lambda * t as f64);
                let (x, y) = &scaled[i];
                let margin = y * (dot(&w, x) + b);
                // w ← (1 − ηλ) w [+ ηy x when the hinge is active]
                let decay = 1.0 - eta * lambda;
                for wd in w.iter_mut() {
                    *wd *= decay;
                }
                if margin < 1.0 {
                    for d in 0..dims {
                        w[d] += eta * y * x[d];
                    }
                    b += eta * y;
                }
            }
        }

        // Calibrate the margins on the training set.
        let scores: Vec<f64> = scaled.iter().map(|(x, _)| dot(&w, x) + b).collect();
        let labels: Vec<Label> = examples.iter().map(|(_, l)| *l).collect();
        let platt = PlattScaler::fit(&scores, &labels);

        Ok(LinearSvm { weights: w, bias: b, feature_means: means, feature_stds: stds, platt, dims })
    }

    /// The raw (uncalibrated) decision value for `x`.
    pub fn decision_value(&self, x: &[f64]) -> f64 {
        let mut s = self.bias;
        for d in 0..self.dims.min(x.len()) {
            s += self.weights[d] * (x[d] - self.feature_means[d]) / self.feature_stds[d];
        }
        s
    }
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len() {
        acc += a[i] * b[i];
    }
    acc
}

impl Classifier for LinearSvm {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        if x.len() != self.dims {
            return 0.5;
        }
        self.platt.probability(self.decision_value(x))
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        // A linear model has no per-query scratch to amortize; the batch
        // path only fans the scalar evaluation out across threads for very
        // large pools. Going through `predict_proba` itself (rather than a
        // duplicated closure body) keeps the per-element machine code — and
        // therefore both the bits and the single-thread cost — identical to
        // the sequential loop.
        crate::batch::map_batch_at(xs, self.parallel_batch_threshold(), |x| self.predict_proba(x))
    }

    /// One dot product per query is far too cheap for the generic fan-out
    /// cutoff: the scoring bench measured 0.26× at 256 points and still
    /// 0.82× at 4096, so only very large pools parallelize.
    fn parallel_batch_threshold(&self) -> usize {
        16384
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Rng;

    fn linear_data(seed: u64, n: usize) -> Vec<(Vec<f64>, Label)> {
        // Label by the hyperplane x + y > 1 with a margin band.
        let mut rng = Rng::new(seed);
        let mut ex = Vec::new();
        while ex.len() < n {
            let x = rng.range_f64(-2.0, 3.0);
            let y = rng.range_f64(-2.0, 3.0);
            let s = x + y - 1.0;
            if s.abs() < 0.1 {
                continue; // margin band
            }
            ex.push((vec![x, y], Label::from_bool(s > 0.0)));
        }
        ex
    }

    #[test]
    fn learns_a_linear_boundary() {
        let data = linear_data(5, 400);
        let model = LinearSvm::fit(&data, 30, 1e-3, 1).unwrap();
        let mut correct = 0;
        for (x, l) in &data {
            if model.predict(x) == *l {
                correct += 1;
            }
        }
        let acc = correct as f64 / data.len() as f64;
        assert!(acc > 0.95, "training accuracy {acc}");
    }

    #[test]
    fn probabilities_track_margin() {
        let data = linear_data(9, 400);
        let model = LinearSvm::fit(&data, 30, 1e-3, 2).unwrap();
        let deep_pos = model.predict_proba(&[3.0, 3.0]);
        let deep_neg = model.predict_proba(&[-3.0, -3.0]);
        let near = model.predict_proba(&[0.5, 0.5]);
        assert!(deep_pos > 0.9, "deep positive {deep_pos}");
        assert!(deep_neg < 0.1, "deep negative {deep_neg}");
        assert!(near > deep_neg && near < deep_pos);
    }

    #[test]
    fn uncertainty_highest_near_boundary() {
        let data = linear_data(11, 400);
        let model = LinearSvm::fit(&data, 30, 1e-3, 3).unwrap();
        let on_boundary = model.uncertainty(&[0.5, 0.5]);
        let far = model.uncertainty(&[3.0, 3.0]);
        assert!(on_boundary > far);
    }

    #[test]
    fn handles_unscaled_features() {
        // One feature 1000× larger: standardization should absorb it.
        let mut data = Vec::new();
        let mut rng = Rng::new(13);
        for _ in 0..200 {
            let x = rng.range_f64(0.0, 2000.0);
            let y = rng.range_f64(0.0, 2.0);
            let label = Label::from_bool(x / 1000.0 + y > 2.0);
            data.push((vec![x, y], label));
        }
        let model = LinearSvm::fit(&data, 30, 1e-3, 4).unwrap();
        let mut correct = 0;
        for (x, l) in &data {
            if model.predict(x) == *l {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.len() as f64 > 0.9);
    }

    #[test]
    fn fit_validations() {
        let data = linear_data(1, 20);
        assert!(LinearSvm::fit(&data, 0, 1e-3, 1).is_err());
        assert!(LinearSvm::fit(&data, 10, 0.0, 1).is_err());
        assert!(LinearSvm::fit(&data, 10, -1.0, 1).is_err());
        assert!(LinearSvm::fit(&[], 10, 1e-3, 1).is_err());
    }

    #[test]
    fn deterministic_for_seed() {
        let data = linear_data(21, 100);
        let m1 = LinearSvm::fit(&data, 10, 1e-3, 77).unwrap();
        let m2 = LinearSvm::fit(&data, 10, 1e-3, 77).unwrap();
        assert_eq!(m1.weights, m2.weights);
        assert_eq!(m1.bias, m2.bias);
    }
}
