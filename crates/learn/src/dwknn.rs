//! The dual weighted k-nearest-neighbour classifier (DWKNN).
//!
//! This is the uncertainty estimator the paper's evaluation uses (Table 1,
//! citing Gou et al., "A new distance-weighted k-nearest neighbor
//! classifier", J. Inf. Comput. Sci. 2012). DWKNN weights the i-th nearest
//! neighbour by the *dual* weight
//!
//! ```text
//! w_i = (d_k − d_i) / (d_k − d_1) × (d_k + d_1) / (d_k + d_i)
//! ```
//!
//! (with `w_i = 1` when `d_k = d_1`), which both decays with distance and
//! normalizes by the neighbourhood's span — nearer neighbours dominate, and
//! the weight of the farthest neighbour is 0. The posterior for the
//! positive class is the weight share of positive neighbours, which makes
//! the classifier *probabilistic*, as uncertainty sampling requires.

use uei_types::{Label, Result, UeiError};

use crate::kdtree::{KdTree, NearestScratch};
use crate::model::{check_two_classes, Classifier};

/// Per-worker buffers for batch scoring: kd-tree traversal scratch plus the
/// distance/weight vectors every query fills. Reusing them removes all
/// per-query allocation from the rescoring hot loop.
#[derive(Default)]
struct DwknnScratch {
    nearest: NearestScratch,
    distances: Vec<f64>,
    weights: Vec<f64>,
}

/// A trained DWKNN classifier.
///
/// ```
/// use uei_learn::{Classifier, Dwknn};
/// use uei_types::Label;
///
/// let examples = vec![
///     (vec![0.0, 0.0], Label::Negative),
///     (vec![0.1, 0.1], Label::Negative),
///     (vec![1.0, 1.0], Label::Positive),
///     (vec![0.9, 1.1], Label::Positive),
/// ];
/// let model = Dwknn::fit(4, &examples).unwrap();
/// assert_eq!(model.predict(&[0.95, 1.0]), Label::Positive);
/// assert_eq!(model.predict(&[0.05, 0.0]), Label::Negative);
/// // Between the clusters the posterior approaches 0.5: that is exactly
/// // the point uncertainty sampling would pick next.
/// assert!(model.uncertainty(&[0.5, 0.55]) > model.uncertainty(&[0.95, 1.0]));
/// ```
#[derive(Debug)]
pub struct Dwknn {
    k: usize,
    tree: KdTree,
    labels: Vec<Label>,
    dims: usize,
}

impl Dwknn {
    /// Fits DWKNN on `(point, label)` examples.
    ///
    /// "Fitting" stores the examples in a kd-tree; `k` is clamped to the
    /// training-set size at query time. Requires both classes present.
    pub fn fit(k: usize, examples: &[(Vec<f64>, Label)]) -> Result<Dwknn> {
        if k == 0 {
            return Err(UeiError::invalid_config("DWKNN requires k >= 1"));
        }
        check_two_classes(examples)?;
        let dims = examples[0].0.len();
        let points: Vec<Vec<f64>> = examples.iter().map(|(x, _)| x.clone()).collect();
        let labels: Vec<Label> = examples.iter().map(|(_, l)| *l).collect();
        let tree = KdTree::build(points)?;
        Ok(Dwknn { k, tree, labels, dims })
    }

    /// The configured neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored training examples.
    pub fn num_examples(&self) -> usize {
        self.labels.len()
    }

    /// The dual weights of Gou et al. for a sorted distance list
    /// `d_1 <= … <= d_k`. Exposed for tests and for the committee.
    pub fn dual_weights(distances: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(distances.len());
        Dwknn::dual_weights_into(distances, &mut out);
        out
    }

    /// [`Self::dual_weights`] into a caller-provided buffer (cleared
    /// first) — the allocation-free form the batch path uses.
    pub fn dual_weights_into(distances: &[f64], out: &mut Vec<f64>) {
        out.clear();
        let k = distances.len();
        if k == 0 {
            return;
        }
        let d1 = distances[0];
        let dk = distances[k - 1];
        if dk == d1 {
            // Degenerate neighbourhood (all equidistant): uniform weights.
            out.resize(k, 1.0);
            return;
        }
        out.extend(distances.iter().map(|&di| (dk - di) / (dk - d1) * (dk + d1) / (dk + di)));
    }

    /// The posterior computation, parameterized over reusable scratch so
    /// both the scalar and batch paths run the exact same code.
    fn proba_with(&self, scratch: &mut DwknnScratch, x: &[f64]) -> f64 {
        let neighbors = match self.tree.nearest_with(&mut scratch.nearest, x, self.k) {
            Ok(n) => n,
            Err(_) => return 0.5, // dimension mismatch: maximally uncertain
        };
        if neighbors.is_empty() {
            return 0.5;
        }
        // kd-tree returns squared distances; DWKNN weights use true distances.
        scratch.distances.clear();
        scratch.distances.extend(neighbors.iter().map(|(d2, _)| d2.sqrt()));
        Dwknn::dual_weights_into(&scratch.distances, &mut scratch.weights);
        let mut pos = 0.0;
        let mut total = 0.0;
        for (w, (_, idx)) in scratch.weights.iter().zip(neighbors) {
            total += w;
            if self.labels[*idx].is_positive() {
                pos += w;
            }
        }
        if total <= 0.0 {
            // All weight on the boundary (k = 1 gives w = [1.0], so this
            // only happens when every weight degenerated to 0); fall back
            // to an unweighted vote.
            let votes = neighbors.iter().filter(|(_, i)| self.labels[*i].is_positive()).count();
            return votes as f64 / neighbors.len() as f64;
        }
        pos / total
    }
}

impl Classifier for Dwknn {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.proba_with(&mut DwknnScratch::default(), x)
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        crate::batch::map_batch_with(xs, DwknnScratch::default, |s, x| self.proba_with(s, x))
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_examples() -> Vec<(Vec<f64>, Label)> {
        let mut ex = Vec::new();
        for i in 0..8 {
            let t = i as f64 * 0.05;
            ex.push((vec![1.0 + t, 1.0 - t], Label::Positive));
            ex.push((vec![-1.0 - t, -1.0 + t], Label::Negative));
        }
        ex
    }

    #[test]
    fn dual_weights_match_formula() {
        let d = [1.0, 2.0, 3.0];
        let w = Dwknn::dual_weights(&d);
        // w_1 = (3-1)/(3-1) * (3+1)/(3+1) = 1.
        assert!((w[0] - 1.0).abs() < 1e-12);
        // w_2 = (3-2)/(3-1) * (3+1)/(3+2) = 0.5 * 0.8 = 0.4.
        assert!((w[1] - 0.4).abs() < 1e-12);
        // Farthest neighbour always gets zero weight.
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn dual_weights_are_monotone_decreasing() {
        let d = [0.5, 1.0, 1.5, 2.0, 4.0];
        let w = Dwknn::dual_weights(&d);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1], "{w:?}");
        }
    }

    #[test]
    fn dual_weights_degenerate_all_equal() {
        assert_eq!(Dwknn::dual_weights(&[2.0, 2.0, 2.0]), vec![1.0, 1.0, 1.0]);
        assert_eq!(Dwknn::dual_weights(&[]), Vec::<f64>::new());
        assert_eq!(Dwknn::dual_weights(&[3.0]), vec![1.0]);
    }

    #[test]
    fn classifies_clusters() {
        let model = Dwknn::fit(3, &cluster_examples()).unwrap();
        assert_eq!(model.predict(&[1.1, 0.9]), Label::Positive);
        assert_eq!(model.predict(&[-1.0, -1.0]), Label::Negative);
        assert!(model.predict_proba(&[1.1, 0.9]) > 0.9);
        assert!(model.predict_proba(&[-1.0, -1.0]) < 0.1);
    }

    #[test]
    fn midpoint_is_uncertain() {
        let model = Dwknn::fit(4, &cluster_examples()).unwrap();
        let u = model.uncertainty(&[0.0, 0.0]);
        assert!(u > 0.3, "midpoint uncertainty {u} should be high");
        let u_deep = model.uncertainty(&[1.0, 1.0]);
        assert!(u_deep < 0.1, "deep-in-cluster uncertainty {u_deep} should be low");
    }

    #[test]
    fn probability_bounds_hold() {
        let model = Dwknn::fit(5, &cluster_examples()).unwrap();
        for x in [-3.0f64, -1.0, 0.0, 0.5, 2.0] {
            for y in [-2.0f64, 0.0, 1.5] {
                let p = model.predict_proba(&[x, y]);
                assert!((0.0..=1.0).contains(&p), "p={p} at ({x},{y})");
            }
        }
    }

    #[test]
    fn k_clamped_to_training_size() {
        let small = vec![(vec![0.0, 0.0], Label::Negative), (vec![1.0, 1.0], Label::Positive)];
        let model = Dwknn::fit(50, &small).unwrap();
        let p = model.predict_proba(&[1.0, 1.0]);
        assert!(p > 0.5);
    }

    #[test]
    fn exact_match_dominates() {
        let examples = vec![
            (vec![0.0, 0.0], Label::Positive),
            (vec![2.0, 2.0], Label::Negative),
            (vec![3.0, 3.0], Label::Negative),
        ];
        let model = Dwknn::fit(3, &examples).unwrap();
        // Query exactly on the positive example: d_1 = 0 gives it maximal
        // dual weight.
        assert_eq!(model.predict(&[0.0, 0.0]), Label::Positive);
    }

    #[test]
    fn fit_validations() {
        assert!(Dwknn::fit(0, &cluster_examples()).is_err());
        assert!(Dwknn::fit(3, &[]).is_err());
        let one_class = vec![(vec![0.0], Label::Positive), (vec![1.0], Label::Positive)];
        assert!(Dwknn::fit(3, &one_class).is_err());
    }

    #[test]
    fn accessors() {
        let model = Dwknn::fit(3, &cluster_examples()).unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.num_examples(), 16);
        assert_eq!(model.dims(), 2);
    }
}
