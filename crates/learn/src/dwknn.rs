//! The dual weighted k-nearest-neighbour classifier (DWKNN).
//!
//! This is the uncertainty estimator the paper's evaluation uses (Table 1,
//! citing Gou et al., "A new distance-weighted k-nearest neighbor
//! classifier", J. Inf. Comput. Sci. 2012). DWKNN weights the i-th nearest
//! neighbour by the *dual* weight
//!
//! ```text
//! w_i = (d_k − d_i) / (d_k − d_1) × (d_k + d_1) / (d_k + d_i)
//! ```
//!
//! (with `w_i = 1` when `d_k = d_1`), which both decays with distance and
//! normalizes by the neighbourhood's span — nearer neighbours dominate, and
//! the weight of the farthest neighbour is 0. The posterior for the
//! positive class is the weight share of positive neighbours, which makes
//! the classifier *probabilistic*, as uncertainty sampling requires.

use uei_types::{Label, PointMatrix, Result, UeiError};

use crate::delta::{knn_influence_delta, knn_influence_delta_flat, ModelDelta, ScoredBatch};
use crate::kdtree::{KdTree, NearestScratch};
use crate::model::{check_two_classes, Classifier};

/// Per-worker buffers for batch scoring: kd-tree traversal scratch plus the
/// distance/weight vectors every query fills. Reusing them removes all
/// per-query allocation from the rescoring hot loop.
#[derive(Default)]
struct DwknnScratch {
    nearest: NearestScratch,
    distances: Vec<f64>,
    weights: Vec<f64>,
}

/// A trained DWKNN classifier.
///
/// ```
/// use uei_learn::{Classifier, Dwknn};
/// use uei_types::Label;
///
/// let examples = vec![
///     (vec![0.0, 0.0], Label::Negative),
///     (vec![0.1, 0.1], Label::Negative),
///     (vec![1.0, 1.0], Label::Positive),
///     (vec![0.9, 1.1], Label::Positive),
/// ];
/// let model = Dwknn::fit(4, &examples).unwrap();
/// assert_eq!(model.predict(&[0.95, 1.0]), Label::Positive);
/// assert_eq!(model.predict(&[0.05, 0.0]), Label::Negative);
/// // Between the clusters the posterior approaches 0.5: that is exactly
/// // the point uncertainty sampling would pick next.
/// assert!(model.uncertainty(&[0.5, 0.55]) > model.uncertainty(&[0.95, 1.0]));
/// ```
#[derive(Debug)]
pub struct Dwknn {
    k: usize,
    tree: KdTree,
    labels: Vec<Label>,
    dims: usize,
}

impl Dwknn {
    /// Fits DWKNN on `(point, label)` examples.
    ///
    /// "Fitting" stores the examples in a kd-tree; `k` is clamped to the
    /// training-set size at query time. Requires both classes present.
    pub fn fit(k: usize, examples: &[(Vec<f64>, Label)]) -> Result<Dwknn> {
        if k == 0 {
            return Err(UeiError::invalid_config("DWKNN requires k >= 1"));
        }
        check_two_classes(examples)?;
        let dims = examples[0].0.len();
        // One pass over the examples slice into contiguous flat storage —
        // the per-iteration refit no longer allocates O(n) point Vecs.
        let mut points = PointMatrix::with_capacity(examples.len(), dims);
        let mut labels: Vec<Label> = Vec::with_capacity(examples.len());
        for (x, l) in examples {
            points.push_row(x)?;
            labels.push(*l);
        }
        let tree = KdTree::from_matrix(points)?;
        Ok(Dwknn { k, tree, labels, dims })
    }

    /// The configured neighbourhood size.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of stored training examples.
    pub fn num_examples(&self) -> usize {
        self.labels.len()
    }

    /// The dual weights of Gou et al. for a sorted distance list
    /// `d_1 <= … <= d_k`. Exposed for tests and for the committee.
    pub fn dual_weights(distances: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(distances.len());
        Dwknn::dual_weights_into(distances, &mut out);
        out
    }

    /// [`Self::dual_weights`] into a caller-provided buffer (cleared
    /// first) — the allocation-free form the batch path uses.
    pub fn dual_weights_into(distances: &[f64], out: &mut Vec<f64>) {
        out.clear();
        let k = distances.len();
        if k == 0 {
            return;
        }
        let d1 = distances[0];
        let dk = distances[k - 1];
        if dk == d1 {
            // Degenerate neighbourhood (all equidistant): uniform weights.
            out.resize(k, 1.0);
            return;
        }
        out.extend(distances.iter().map(|&di| (dk - di) / (dk - d1) * (dk + d1) / (dk + di)));
    }

    /// The posterior computation, parameterized over reusable scratch so
    /// both the scalar and batch paths run the exact same code.
    fn proba_with(&self, scratch: &mut DwknnScratch, x: &[f64]) -> f64 {
        self.proba_radius_with(scratch, x).0
    }

    /// The posterior plus the query's squared influence radius — the
    /// distance to its k-th nearest neighbour, straight off the same tree
    /// traversal that scored it. The radius is infinite when the
    /// neighbourhood is unsaturated (fewer than `k` training examples) or
    /// the query could not be answered, i.e. whenever *any* future
    /// training example could change the score.
    fn proba_radius_with(&self, scratch: &mut DwknnScratch, x: &[f64]) -> (f64, f64) {
        let neighbors = match self.tree.nearest_with(&mut scratch.nearest, x, self.k) {
            Ok(n) => n,
            Err(_) => return (0.5, f64::INFINITY), // dimension mismatch
        };
        if neighbors.is_empty() {
            return (0.5, f64::INFINITY);
        }
        let radius2 = if neighbors.len() == self.k {
            neighbors[neighbors.len() - 1].0 // already squared
        } else {
            f64::INFINITY
        };
        // kd-tree returns squared distances; DWKNN weights use true distances.
        scratch.distances.clear();
        scratch.distances.extend(neighbors.iter().map(|(d2, _)| d2.sqrt()));
        Dwknn::dual_weights_into(&scratch.distances, &mut scratch.weights);
        let mut pos = 0.0;
        let mut total = 0.0;
        for (w, (_, idx)) in scratch.weights.iter().zip(neighbors) {
            total += w;
            if self.labels[*idx].is_positive() {
                pos += w;
            }
        }
        if total <= 0.0 {
            // All weight on the boundary (k = 1 gives w = [1.0], so this
            // only happens when every weight degenerated to 0); fall back
            // to an unweighted vote.
            let votes = neighbors.iter().filter(|(_, i)| self.labels[*i].is_positive()).count();
            return (votes as f64 / neighbors.len() as f64, radius2);
        }
        (pos / total, radius2)
    }
}

impl Classifier for Dwknn {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.proba_with(&mut DwknnScratch::default(), x)
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        crate::batch::map_batch_with(xs, DwknnScratch::default, |s, x| self.proba_with(s, x))
    }

    fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> ScoredBatch {
        let pairs = crate::batch::map_batch_with(xs, DwknnScratch::default, |s, x| {
            self.proba_radius_with(s, x)
        });
        let mut probs = Vec::with_capacity(pairs.len());
        let mut radii2 = Vec::with_capacity(pairs.len());
        for (p, r2) in pairs {
            probs.push(p);
            radii2.push(r2);
        }
        ScoredBatch { probs, radii2: Some(radii2) }
    }

    fn model_delta(
        &self,
        points: &[&[f64]],
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        knn_influence_delta(points, radii2, added, margin, self.parallel_batch_threshold())
    }

    fn model_delta_matrix(
        &self,
        points: &PointMatrix,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        knn_influence_delta_flat(points, radii2, added, margin, self.parallel_batch_threshold())
    }

    fn model_delta_matrix_range(
        &self,
        points: &PointMatrix,
        rows: std::ops::Range<usize>,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        crate::delta::knn_influence_delta_flat_range(
            points,
            rows,
            radii2,
            added,
            margin,
            self.parallel_batch_threshold(),
        )
    }

    fn influence_position(&self, x: &[f64]) -> Option<Vec<f64>> {
        // Same influence geometry as plain kNN: radii are raw-input-space
        // k-th-neighbour distances, so the influence space is the input
        // space and dimension mismatches map to `None`.
        (x.len() == self.dims).then(|| x.to_vec())
    }

    fn training_len(&self) -> Option<usize> {
        Some(self.labels.len())
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_examples() -> Vec<(Vec<f64>, Label)> {
        let mut ex = Vec::new();
        for i in 0..8 {
            let t = i as f64 * 0.05;
            ex.push((vec![1.0 + t, 1.0 - t], Label::Positive));
            ex.push((vec![-1.0 - t, -1.0 + t], Label::Negative));
        }
        ex
    }

    #[test]
    fn dual_weights_match_formula() {
        let d = [1.0, 2.0, 3.0];
        let w = Dwknn::dual_weights(&d);
        // w_1 = (3-1)/(3-1) * (3+1)/(3+1) = 1.
        assert!((w[0] - 1.0).abs() < 1e-12);
        // w_2 = (3-2)/(3-1) * (3+1)/(3+2) = 0.5 * 0.8 = 0.4.
        assert!((w[1] - 0.4).abs() < 1e-12);
        // Farthest neighbour always gets zero weight.
        assert_eq!(w[2], 0.0);
    }

    #[test]
    fn dual_weights_are_monotone_decreasing() {
        let d = [0.5, 1.0, 1.5, 2.0, 4.0];
        let w = Dwknn::dual_weights(&d);
        for pair in w.windows(2) {
            assert!(pair[0] >= pair[1], "{w:?}");
        }
    }

    #[test]
    fn dual_weights_degenerate_all_equal() {
        assert_eq!(Dwknn::dual_weights(&[2.0, 2.0, 2.0]), vec![1.0, 1.0, 1.0]);
        assert_eq!(Dwknn::dual_weights(&[]), Vec::<f64>::new());
        assert_eq!(Dwknn::dual_weights(&[3.0]), vec![1.0]);
    }

    #[test]
    fn classifies_clusters() {
        let model = Dwknn::fit(3, &cluster_examples()).unwrap();
        assert_eq!(model.predict(&[1.1, 0.9]), Label::Positive);
        assert_eq!(model.predict(&[-1.0, -1.0]), Label::Negative);
        assert!(model.predict_proba(&[1.1, 0.9]) > 0.9);
        assert!(model.predict_proba(&[-1.0, -1.0]) < 0.1);
    }

    #[test]
    fn midpoint_is_uncertain() {
        let model = Dwknn::fit(4, &cluster_examples()).unwrap();
        let u = model.uncertainty(&[0.0, 0.0]);
        assert!(u > 0.3, "midpoint uncertainty {u} should be high");
        let u_deep = model.uncertainty(&[1.0, 1.0]);
        assert!(u_deep < 0.1, "deep-in-cluster uncertainty {u_deep} should be low");
    }

    #[test]
    fn probability_bounds_hold() {
        let model = Dwknn::fit(5, &cluster_examples()).unwrap();
        for x in [-3.0f64, -1.0, 0.0, 0.5, 2.0] {
            for y in [-2.0f64, 0.0, 1.5] {
                let p = model.predict_proba(&[x, y]);
                assert!((0.0..=1.0).contains(&p), "p={p} at ({x},{y})");
            }
        }
    }

    #[test]
    fn k_clamped_to_training_size() {
        let small = vec![(vec![0.0, 0.0], Label::Negative), (vec![1.0, 1.0], Label::Positive)];
        let model = Dwknn::fit(50, &small).unwrap();
        let p = model.predict_proba(&[1.0, 1.0]);
        assert!(p > 0.5);
    }

    #[test]
    fn exact_match_dominates() {
        let examples = vec![
            (vec![0.0, 0.0], Label::Positive),
            (vec![2.0, 2.0], Label::Negative),
            (vec![3.0, 3.0], Label::Negative),
        ];
        let model = Dwknn::fit(3, &examples).unwrap();
        // Query exactly on the positive example: d_1 = 0 gives it maximal
        // dual weight.
        assert_eq!(model.predict(&[0.0, 0.0]), Label::Positive);
    }

    #[test]
    fn fit_validations() {
        assert!(Dwknn::fit(0, &cluster_examples()).is_err());
        assert!(Dwknn::fit(3, &[]).is_err());
        let one_class = vec![(vec![0.0], Label::Positive), (vec![1.0], Label::Positive)];
        assert!(Dwknn::fit(3, &one_class).is_err());
    }

    #[test]
    fn accessors() {
        let model = Dwknn::fit(3, &cluster_examples()).unwrap();
        assert_eq!(model.k(), 3);
        assert_eq!(model.num_examples(), 16);
        assert_eq!(model.dims(), 2);
    }

    #[test]
    fn tracked_batch_matches_plain_and_reports_radii() {
        let model = Dwknn::fit(3, &cluster_examples()).unwrap();
        let queries: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![-2.0, 0.5]];
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let plain = model.predict_proba_batch(&refs);
        let tracked = model.predict_proba_batch_tracked(&refs);
        for (a, b) in plain.iter().zip(&tracked.probs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let radii2 = tracked.radii2.expect("kNN-family models report radii");
        // 16 training examples ≥ k = 3: every neighbourhood is saturated.
        assert!(radii2.iter().all(|r| r.is_finite() && *r > 0.0), "{radii2:?}");
    }

    #[test]
    fn unsaturated_neighbourhood_has_infinite_radius() {
        let small = vec![(vec![0.0, 0.0], Label::Negative), (vec![1.0, 1.0], Label::Positive)];
        let model = Dwknn::fit(5, &small).unwrap();
        let q = [0.5, 0.5];
        let qs: Vec<&[f64]> = vec![&q];
        let tracked = model.predict_proba_batch_tracked(&qs);
        assert!(
            tracked.radii2.unwrap()[0].is_infinite(),
            "fewer than k examples: any added point changes the neighbourhood"
        );
    }

    #[test]
    fn clean_points_score_bit_identically_after_append() {
        // The delta soundness contract end to end: score a query grid and
        // capture radii under model A; append one training example (the
        // labeled set is append-only, so B extends A); every point B
        // reports clean must produce a bit-identical posterior.
        let examples = cluster_examples();
        let a = Dwknn::fit(3, &examples).unwrap();
        let grid: Vec<Vec<f64>> = (0..20)
            .flat_map(|i| (0..20).map(move |j| vec![i as f64 * 0.2 - 2.0, j as f64 * 0.2 - 2.0]))
            .collect();
        let refs: Vec<&[f64]> = grid.iter().map(|p| p.as_slice()).collect();
        let before = a.predict_proba_batch_tracked(&refs);
        let radii2 = before.radii2.unwrap();

        let new_point = vec![0.3, -0.2];
        let mut extended = examples.clone();
        extended.push((new_point.clone(), Label::Positive));
        let b = Dwknn::fit(3, &extended).unwrap();

        let added_refs: Vec<&[f64]> = vec![new_point.as_slice()];
        let delta = b.model_delta(&refs, &radii2, &added_refs, 0.0);
        let crate::delta::ModelDelta::Dirty(mask) = delta else {
            panic!("kNN-family deltas are spatial");
        };
        let after = b.predict_proba_batch(&refs);
        let mut clean = 0;
        for i in 0..refs.len() {
            if !mask[i] {
                clean += 1;
                assert_eq!(
                    before.probs[i].to_bits(),
                    after[i].to_bits(),
                    "clean point {i} changed score"
                );
            }
        }
        assert!(clean > 0, "a local insertion must leave some points clean");
        assert!(clean < refs.len(), "points near the insertion must be dirty");
    }
}
