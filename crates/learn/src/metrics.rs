//! Classification metrics.
//!
//! The paper measures exploration quality as the **F-measure** of the set
//! the model classifies positive against the oracle's true relevant set
//! (Table 1, Figures 3–5).

use uei_types::Label;

/// A 2×2 confusion matrix for binary classification.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Relevant, predicted relevant.
    pub tp: u64,
    /// Irrelevant, predicted relevant.
    pub fp: u64,
    /// Relevant, predicted irrelevant.
    pub fn_: u64,
    /// Irrelevant, predicted irrelevant.
    pub tn: u64,
}

impl ConfusionMatrix {
    /// Tallies predictions against ground truth.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Label, Label)>) -> ConfusionMatrix {
        let mut m = ConfusionMatrix::default();
        for (truth, predicted) in pairs {
            m.record(truth, predicted);
        }
        m
    }

    /// Records a single (truth, prediction) pair.
    pub fn record(&mut self, truth: Label, predicted: Label) {
        match (truth.is_positive(), predicted.is_positive()) {
            (true, true) => self.tp += 1,
            (false, true) => self.fp += 1,
            (true, false) => self.fn_ += 1,
            (false, false) => self.tn += 1,
        }
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.tp + self.fp + self.fn_ + self.tn
    }

    /// Precision `tp / (tp + fp)`; 0 when nothing was predicted positive.
    pub fn precision(&self) -> f64 {
        ratio(self.tp, self.tp + self.fp)
    }

    /// Recall `tp / (tp + fn)`; 0 when nothing is truly positive.
    pub fn recall(&self) -> f64 {
        ratio(self.tp, self.tp + self.fn_)
    }

    /// Accuracy `(tp + tn) / total`.
    pub fn accuracy(&self) -> f64 {
        ratio(self.tp + self.tn, self.total())
    }

    /// F1: harmonic mean of precision and recall (the paper's F-measure).
    pub fn f_measure(&self) -> f64 {
        self.f_beta(1.0)
    }

    /// Fβ measure.
    pub fn f_beta(&self, beta: f64) -> f64 {
        let p = self.precision();
        let r = self.recall();
        let b2 = beta * beta;
        if p + r == 0.0 {
            0.0
        } else {
            (1.0 + b2) * p * r / (b2 * p + r)
        }
    }

    /// All derived metrics at once.
    pub fn metrics(&self) -> Metrics {
        Metrics {
            precision: self.precision(),
            recall: self.recall(),
            f_measure: self.f_measure(),
            accuracy: self.accuracy(),
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Derived classification metrics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Precision.
    pub precision: f64,
    /// Recall.
    pub recall: f64,
    /// F1 score.
    pub f_measure: f64,
    /// Accuracy.
    pub accuracy: f64,
}

/// F-measure of a predicted positive *set* against the true relevant set —
/// the form the paper's user simulation uses (relevant tuples come from an
/// oracle range query).
///
/// Both slices must be sorted ascending and duplicate-free.
pub fn set_f_measure(predicted_sorted: &[u64], relevant_sorted: &[u64]) -> f64 {
    debug_assert!(predicted_sorted.windows(2).all(|w| w[0] < w[1]));
    debug_assert!(relevant_sorted.windows(2).all(|w| w[0] < w[1]));
    let mut tp = 0u64;
    let mut i = 0;
    let mut j = 0;
    while i < predicted_sorted.len() && j < relevant_sorted.len() {
        match predicted_sorted[i].cmp(&relevant_sorted[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                tp += 1;
                i += 1;
                j += 1;
            }
        }
    }
    let fp = predicted_sorted.len() as u64 - tp;
    let fn_ = relevant_sorted.len() as u64 - tp;
    let m = ConfusionMatrix { tp, fp, fn_, tn: 0 };
    m.f_measure()
}

#[cfg(test)]
mod tests {
    use super::*;
    use Label::{Negative as N, Positive as P};

    #[test]
    fn perfect_prediction() {
        let m = ConfusionMatrix::from_pairs([(P, P), (P, P), (N, N)]);
        assert_eq!(m.precision(), 1.0);
        assert_eq!(m.recall(), 1.0);
        assert_eq!(m.f_measure(), 1.0);
        assert_eq!(m.accuracy(), 1.0);
    }

    #[test]
    fn worked_example() {
        // tp=3, fp=1, fn=2, tn=4.
        let m = ConfusionMatrix { tp: 3, fp: 1, fn_: 2, tn: 4 };
        assert_eq!(m.total(), 10);
        assert!((m.precision() - 0.75).abs() < 1e-12);
        assert!((m.recall() - 0.6).abs() < 1e-12);
        // F1 = 2·0.75·0.6 / 1.35 = 2/3.
        assert!((m.f_measure() - 2.0 / 3.0).abs() < 1e-12);
        assert!((m.accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_are_zero_not_nan() {
        let empty = ConfusionMatrix::default();
        assert_eq!(empty.precision(), 0.0);
        assert_eq!(empty.recall(), 0.0);
        assert_eq!(empty.f_measure(), 0.0);
        assert_eq!(empty.accuracy(), 0.0);

        // Predicted nothing positive.
        let m = ConfusionMatrix { tp: 0, fp: 0, fn_: 5, tn: 5 };
        assert_eq!(m.precision(), 0.0);
        assert_eq!(m.f_measure(), 0.0);
    }

    #[test]
    fn f_beta_weights_recall() {
        let m = ConfusionMatrix { tp: 3, fp: 1, fn_: 2, tn: 4 };
        // β=2 weights recall; recall (0.6) < precision (0.75) so F2 < F1.
        assert!(m.f_beta(2.0) < m.f_measure());
        assert!(m.f_beta(0.5) > m.f_measure());
    }

    #[test]
    fn record_matches_from_pairs() {
        let mut m = ConfusionMatrix::default();
        m.record(P, P);
        m.record(N, P);
        m.record(P, N);
        m.record(N, N);
        assert_eq!(m, ConfusionMatrix { tp: 1, fp: 1, fn_: 1, tn: 1 });
        assert_eq!(m.metrics().accuracy, 0.5);
    }

    #[test]
    fn set_f_measure_matches_matrix() {
        let predicted = [1u64, 2, 3, 10];
        let relevant = [2u64, 3, 4, 5, 10];
        // tp=3, fp=1, fn=2.
        let f = set_f_measure(&predicted, &relevant);
        let m = ConfusionMatrix { tp: 3, fp: 1, fn_: 2, tn: 0 };
        assert!((f - m.f_measure()).abs() < 1e-12);
    }

    #[test]
    fn set_f_measure_edges() {
        assert_eq!(set_f_measure(&[], &[]), 0.0);
        assert_eq!(set_f_measure(&[1], &[]), 0.0);
        assert_eq!(set_f_measure(&[], &[1]), 0.0);
        assert_eq!(set_f_measure(&[1, 2], &[1, 2]), 1.0);
        assert_eq!(set_f_measure(&[1], &[2]), 0.0);
    }
}
