//! A static kd-tree for exact k-nearest-neighbour and range queries.
//!
//! The nearest-neighbour classifiers ([`crate::dwknn::Dwknn`],
//! [`crate::knn::Knn`]) rebuild this tree each time the labeled set grows —
//! labeled sets in interactive exploration are small (hundreds of points),
//! so a fresh balanced build is cheaper and simpler than incremental
//! maintenance. The oracle also uses [`KdTree::range_query`] for target
//! region membership at scale.
//!
//! Nodes live in a flat arena indexed by `usize`; construction recursively
//! median-splits along the dimension of largest spread.

use std::collections::BinaryHeap;

use uei_types::point::squared_distance;
use uei_types::{Region, Result, UeiError};

/// One arena node.
#[derive(Debug)]
struct Node {
    /// Index into `points` of the splitting point.
    point: u32,
    /// Split dimension.
    dim: u8,
    /// Left child arena index (`u32::MAX` = none).
    left: u32,
    /// Right child arena index (`u32::MAX` = none).
    right: u32,
}

const NONE: u32 = u32::MAX;

/// A static kd-tree over a set of points.
///
/// ```
/// use uei_learn::KdTree;
///
/// let tree = KdTree::build(vec![
///     vec![0.0, 0.0],
///     vec![5.0, 5.0],
///     vec![1.0, 1.0],
/// ]).unwrap();
/// let nearest = tree.nearest(&[0.9, 0.9], 2).unwrap();
/// assert_eq!(nearest[0].1, 2); // index of [1.0, 1.0]
/// assert_eq!(nearest[1].1, 0);
/// ```
#[derive(Debug)]
pub struct KdTree {
    points: Vec<Vec<f64>>,
    nodes: Vec<Node>,
    root: u32,
    dims: usize,
}

/// A neighbour returned by [`KdTree::nearest`]: `(squared distance, index
/// of the point in the build order)`.
pub type Neighbor = (f64, usize);

/// Reusable buffers for repeated [`KdTree::nearest_with`] queries.
///
/// A fresh `nearest` call allocates a heap and a result vector; batch
/// scoring issues thousands of such queries per iteration, so the scratch
/// lets one worker amortize those allocations across its whole segment.
/// Scratch contents never affect the values produced — only where they are
/// stored — so results are identical to [`KdTree::nearest`].
#[derive(Default)]
pub struct NearestScratch {
    heap: BinaryHeap<HeapEntry>,
    out: Vec<Neighbor>,
}

impl NearestScratch {
    /// Creates an empty scratch; capacity grows on first use.
    pub fn new() -> NearestScratch {
        NearestScratch::default()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist2: f64,
    index: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by distance; ties broken by index for determinism.
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("distances are never NaN")
            .then(self.index.cmp(&other.index))
    }
}

impl KdTree {
    /// Builds a tree from points (all of equal dimensionality, no NaNs).
    pub fn build(points: Vec<Vec<f64>>) -> Result<KdTree> {
        let dims = match points.first() {
            Some(p) => p.len(),
            None => {
                return Ok(KdTree { points, nodes: Vec::new(), root: NONE, dims: 0 });
            }
        };
        if dims == 0 {
            return Err(UeiError::invalid_config("kd-tree points need at least 1 dimension"));
        }
        for p in &points {
            if p.len() != dims {
                return Err(UeiError::DimensionMismatch { expected: dims, actual: p.len() });
            }
            if p.iter().any(|v| v.is_nan()) {
                return Err(UeiError::invalid_config("kd-tree points must not contain NaN"));
            }
        }
        let mut indices: Vec<u32> = (0..points.len() as u32).collect();
        let mut nodes = Vec::with_capacity(points.len());
        let root = build_recursive(&points, &mut indices[..], &mut nodes, dims);
        Ok(KdTree { points, nodes, root, dims })
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The point stored at build index `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        &self.points[i]
    }

    /// The `k` nearest neighbours of `query`, ascending by distance
    /// (squared), ties broken by build index. Returns fewer when the tree
    /// holds fewer than `k` points.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        let mut scratch = NearestScratch::new();
        self.nearest_with(&mut scratch, query, k)?;
        Ok(std::mem::take(&mut scratch.out))
    }

    /// Like [`Self::nearest`], but reuses `scratch` buffers across calls
    /// and leaves the neighbours in `scratch.out` — see the returned slice.
    /// The produced neighbours are identical to `nearest`'s.
    pub fn nearest_with<'s>(
        &self,
        scratch: &'s mut NearestScratch,
        query: &[f64],
        k: usize,
    ) -> Result<&'s [Neighbor]> {
        scratch.heap.clear();
        scratch.out.clear();
        if self.is_empty() || k == 0 {
            return Ok(&scratch.out);
        }
        if query.len() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: query.len() });
        }
        self.search(self.root, query, k, &mut scratch.heap);
        scratch.out.extend(scratch.heap.drain().map(|e| (e.dist2, e.index)));
        scratch
            .out
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN distances").then(a.1.cmp(&b.1)));
        Ok(&scratch.out)
    }

    fn search(&self, node_idx: u32, query: &[f64], k: usize, heap: &mut BinaryHeap<HeapEntry>) {
        if node_idx == NONE {
            return;
        }
        let node = &self.nodes[node_idx as usize];
        let point = &self.points[node.point as usize];
        let d2 = squared_distance(point, query).expect("dims validated");
        if heap.len() < k {
            heap.push(HeapEntry { dist2: d2, index: node.point as usize });
        } else if let Some(top) = heap.peek() {
            if d2 < top.dist2 || (d2 == top.dist2 && (node.point as usize) < top.index) {
                heap.pop();
                heap.push(HeapEntry { dist2: d2, index: node.point as usize });
            }
        }
        let dim = node.dim as usize;
        let diff = query[dim] - point[dim];
        let (near, far) =
            if diff < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
        self.search(near, query, k, heap);
        // Prune the far side unless the splitting plane is closer than the
        // current k-th neighbour (or we have fewer than k).
        let must_visit =
            heap.len() < k || diff * diff <= heap.peek().expect("non-empty heap").dist2;
        if must_visit {
            self.search(far, query, k, heap);
        }
    }

    /// Indices of every point inside `region`.
    pub fn range_query(&self, region: &Region) -> Result<Vec<usize>> {
        if self.is_empty() {
            return Ok(Vec::new());
        }
        if region.dims() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: region.dims() });
        }
        let mut out = Vec::new();
        self.range_recursive(self.root, region, &mut out)?;
        out.sort_unstable();
        Ok(out)
    }

    fn range_recursive(&self, node_idx: u32, region: &Region, out: &mut Vec<usize>) -> Result<()> {
        if node_idx == NONE {
            return Ok(());
        }
        let node = &self.nodes[node_idx as usize];
        let point = &self.points[node.point as usize];
        if region.contains(point)? {
            out.push(node.point as usize);
        }
        let dim = node.dim as usize;
        let v = point[dim];
        // Descend only into subtrees that can intersect the region along
        // the split dimension. Duplicate coordinates may land on either
        // side of the median, so both bounds are conservative (<=).
        if region.lo[dim] <= v {
            self.range_recursive(node.left, region, out)?;
        }
        if v <= region.hi[dim] {
            self.range_recursive(node.right, region, out)?;
        }
        Ok(())
    }
}

fn build_recursive(
    points: &[Vec<f64>],
    indices: &mut [u32],
    nodes: &mut Vec<Node>,
    dims: usize,
) -> u32 {
    if indices.is_empty() {
        return NONE;
    }
    // Split along the dimension of largest spread for better balance on
    // skewed data.
    let mut best_dim = 0;
    let mut best_spread = f64::NEG_INFINITY;
    for d in 0..dims {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &i in indices.iter() {
            let v = points[i as usize][d];
            lo = lo.min(v);
            hi = hi.max(v);
        }
        let spread = hi - lo;
        if spread > best_spread {
            best_spread = spread;
            best_dim = d;
        }
    }
    let mid = indices.len() / 2;
    indices.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize][best_dim]
            .partial_cmp(&points[b as usize][best_dim])
            .expect("no NaN")
            .then(a.cmp(&b))
    });
    let point = indices[mid];
    let node_idx = nodes.len() as u32;
    nodes.push(Node { point, dim: best_dim as u8, left: NONE, right: NONE });
    let (left_slice, rest) = indices.split_at_mut(mid);
    let right_slice = &mut rest[1..];
    let left = build_recursive(points, left_slice, nodes, dims);
    let right = build_recursive(points, right_slice, nodes, dims);
    nodes[node_idx as usize].left = left;
    nodes[node_idx as usize].right = right;
    node_idx
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Rng;

    fn brute_force_knn(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (squared_distance(p, query).unwrap(), i))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| (0..dims).map(|_| rng.range_f64(-10.0, 10.0)).collect()).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(500, 3, 42);
        let tree = KdTree::build(points.clone()).unwrap();
        let mut rng = Rng::new(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            for k in [1, 3, 10] {
                let got = tree.nearest(&q, k).unwrap();
                let want = brute_force_knn(&points, &q, k);
                assert_eq!(got, want, "k={k} query={q:?}");
            }
        }
    }

    #[test]
    fn knn_with_duplicates_and_exact_hits() {
        let mut points = random_points(50, 2, 1);
        points.push(points[0].clone());
        points.push(points[0].clone());
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&points[0], 3).unwrap();
        assert_eq!(got[0].0, 0.0);
        assert_eq!(got[1].0, 0.0);
        assert_eq!(got[2].0, 0.0);
        let want = brute_force_knn(&points, &points[0], 3);
        assert_eq!(got, want);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let points = random_points(5, 2, 3);
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&[0.0, 0.0], 100).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(vec![]).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&[1.0], 3).unwrap(), vec![]);
        let region = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&region).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn build_rejects_bad_points() {
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KdTree::build(vec![vec![f64::NAN]]).is_err());
        assert!(KdTree::build(vec![vec![]]).is_err());
    }

    #[test]
    fn query_dim_mismatch() {
        let tree = KdTree::build(random_points(10, 3, 5)).unwrap();
        assert!(tree.nearest(&[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn range_query_matches_filter() {
        let points = random_points(400, 2, 9);
        let tree = KdTree::build(points.clone()).unwrap();
        let region = Region::new(vec![-5.0, 0.0], vec![5.0, 8.0]).unwrap();
        let got = tree.range_query(&region).unwrap();
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p).unwrap())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_query_closed_region() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let tree = KdTree::build(points).unwrap();
        let closed = Region::closed(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&closed).unwrap(), vec![0, 1]);
        let open = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&open).unwrap(), vec![0]);
    }

    #[test]
    fn nearest_is_deterministic() {
        let points = random_points(100, 4, 11);
        let tree = KdTree::build(points).unwrap();
        let q = vec![0.0; 4];
        let a = tree.nearest(&q, 7).unwrap();
        let b = tree.nearest(&q, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_with_scratch_matches_fresh_calls() {
        let points = random_points(300, 3, 17);
        let tree = KdTree::build(points).unwrap();
        let mut scratch = NearestScratch::new();
        let mut rng = Rng::new(23);
        for _ in 0..40 {
            let q: Vec<f64> = (0..3).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            let fresh = tree.nearest(&q, 5).unwrap();
            let reused = tree.nearest_with(&mut scratch, &q, 5).unwrap();
            assert_eq!(fresh, reused);
        }
        // Error paths leave the scratch reusable.
        assert!(tree.nearest_with(&mut scratch, &[0.0], 5).is_err());
        assert_eq!(tree.nearest_with(&mut scratch, &[0.0, 0.0, 0.0], 0).unwrap(), &[]);
    }

    #[test]
    fn high_dim_small_n() {
        let points = random_points(20, 8, 13);
        let tree = KdTree::build(points.clone()).unwrap();
        let q = vec![1.0; 8];
        assert_eq!(tree.nearest(&q, 5).unwrap(), brute_force_knn(&points, &q, 5));
    }
}
