//! A static kd-tree for exact k-nearest-neighbour and range queries.
//!
//! The nearest-neighbour classifiers ([`crate::dwknn::Dwknn`],
//! [`crate::knn::Knn`]) rebuild this tree each time the labeled set grows —
//! labeled sets in interactive exploration are small (hundreds of points),
//! so a fresh balanced build is cheaper and simpler than incremental
//! maintenance. The oracle also uses [`KdTree::range_query`] for target
//! region membership at scale.
//!
//! # Layout
//!
//! The tree is a *flat SoA* structure built for cache-friendly queries:
//!
//! - points live in one contiguous row-major [`PointMatrix`], permuted so
//!   that each leaf bucket (up to [`LEAF_SIZE`] points) is one linear
//!   slice — a leaf scan is a single sweep of
//!   [`squared_distances_block`] over flat memory, no per-point pointer
//!   chase;
//! - inner nodes store only a split dimension and split value in a flat
//!   arena; the points themselves all sit in leaves;
//! - a permutation array maps leaf slots back to *build indices*, the
//!   public identity of every point. Neighbour results are selected
//!   exactly (lexicographically by `(distance², build index)`), so the
//!   permutation is invisible in the output: results are bit-identical to
//!   a brute-force scan in build order.
//!
//! Construction and traversal both run on explicit work stacks — no
//! recursion, so pathological million-point builds cannot overflow the
//! thread stack, and repeated queries through [`NearestScratch`] perform
//! no allocation at all once the buffers have grown.

use std::collections::BinaryHeap;

use uei_types::point::{squared_distances_block, PointMatrix};
use uei_types::{Region, Result, UeiError};

/// Maximum points per leaf bucket. Leaves are scanned linearly with the
/// blocked distance kernel, so the bucket wants to be large enough to
/// amortize the traversal overhead and small enough to keep scans cheap;
/// 16 rows × 8 dims × 8 bytes = 1 KiB, a couple of cache lines per
/// dimension stripe.
pub const LEAF_SIZE: usize = 16;

/// Absent child sentinel (empty tree only: every build split leaves both
/// sides non-empty, so real inner nodes always have two children).
const NONE: u32 = u32::MAX;

/// Tag bit marking a child reference as a leaf index.
const LEAF_BIT: u32 = 1 << 31;

/// One inner node: an axis-aligned splitting plane. Left descendants have
/// `coord[dim] <= split` and right descendants `coord[dim] >= split`
/// (points equal to the split value are routed by build-index tie-break,
/// hence both bounds are inclusive).
#[derive(Debug)]
struct Inner {
    split: f64,
    dim: u32,
    /// Left child reference (`LEAF_BIT`-tagged leaf index or inner index).
    left: u32,
    /// Right child reference.
    right: u32,
}

/// A static kd-tree over a set of points.
///
/// ```
/// use uei_learn::KdTree;
///
/// let tree = KdTree::build(vec![
///     vec![0.0, 0.0],
///     vec![5.0, 5.0],
///     vec![1.0, 1.0],
/// ]).unwrap();
/// let nearest = tree.nearest(&[0.9, 0.9], 2).unwrap();
/// assert_eq!(nearest[0].1, 2); // index of [1.0, 1.0]
/// assert_eq!(nearest[1].1, 0);
/// ```
#[derive(Debug)]
pub struct KdTree {
    /// All points, permuted into leaf-contiguous order.
    points: PointMatrix,
    /// Leaf slot → build index.
    perm: Vec<u32>,
    /// Build index → leaf slot (for [`Self::point`]).
    inv: Vec<u32>,
    /// Inner-node arena.
    nodes: Vec<Inner>,
    /// Leaf buckets as `[start, end)` slot ranges.
    leaves: Vec<(u32, u32)>,
    /// Root child reference (`NONE` for the empty tree).
    root: u32,
    dims: usize,
}

/// A neighbour returned by [`KdTree::nearest`]: `(squared distance, index
/// of the point in the build order)`.
pub type Neighbor = (f64, usize);

/// Reusable buffers for repeated [`KdTree::nearest_with`] queries.
///
/// A fresh `nearest` call allocates a candidate heap, a traversal stack, a
/// leaf-distance buffer, and a result vector; batch scoring issues
/// thousands of such queries per iteration, so the scratch lets one worker
/// amortize those allocations across its whole segment. Scratch contents
/// never affect the values produced — every buffer is cleared on entry, so
/// one scratch can serve trees of different shapes and dimensionalities
/// back to back — and results are identical to [`KdTree::nearest`].
#[derive(Default)]
pub struct NearestScratch {
    heap: BinaryHeap<HeapEntry>,
    out: Vec<Neighbor>,
    /// DFS work stack: `(child reference, squared lower bound on any
    /// distance inside that subtree)`.
    stack: Vec<(u32, f64)>,
    /// Per-leaf squared distances from the blocked kernel.
    dists: Vec<f64>,
}

impl NearestScratch {
    /// Creates an empty scratch; capacity grows on first use.
    pub fn new() -> NearestScratch {
        NearestScratch::default()
    }
}

#[derive(PartialEq)]
struct HeapEntry {
    dist2: f64,
    index: usize,
}

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap by distance; ties broken by index for determinism.
        self.dist2
            .partial_cmp(&other.dist2)
            .expect("distances are never NaN")
            .then(self.index.cmp(&other.index))
    }
}

/// Where a finished build job's child reference gets patched in.
enum Patch {
    Root,
    Left(u32),
    Right(u32),
}

impl KdTree {
    /// Builds a tree from points (all of equal dimensionality, no NaNs).
    pub fn build(points: Vec<Vec<f64>>) -> Result<KdTree> {
        KdTree::from_matrix(PointMatrix::from_rows(&points)?)
    }

    /// Builds a tree from an already-flat point matrix — the
    /// allocation-free path the nearest-neighbour classifiers use on every
    /// refit.
    ///
    /// Construction runs on an explicit work stack (never the call stack),
    /// median-splitting along the dimension of largest spread until at
    /// most [`LEAF_SIZE`] points remain per bucket, then permutes the
    /// points into leaf-contiguous order.
    pub fn from_matrix(points: PointMatrix) -> Result<KdTree> {
        let dims = points.dims();
        let n = points.len();
        if n == 0 {
            return Ok(KdTree {
                points,
                perm: Vec::new(),
                inv: Vec::new(),
                nodes: Vec::new(),
                leaves: Vec::new(),
                root: NONE,
                dims,
            });
        }
        if dims == 0 {
            return Err(UeiError::invalid_config("kd-tree points need at least 1 dimension"));
        }
        if n >= LEAF_BIT as usize {
            return Err(UeiError::invalid_config("kd-tree supports at most 2^31 - 1 points"));
        }
        if points.has_nan() {
            return Err(UeiError::invalid_config("kd-tree points must not contain NaN"));
        }

        let mut indices: Vec<u32> = (0..n as u32).collect();
        let mut nodes: Vec<Inner> = Vec::new();
        let mut leaves: Vec<(u32, u32)> = Vec::with_capacity(n.div_ceil(LEAF_SIZE));
        let mut perm: Vec<u32> = Vec::with_capacity(n);
        let mut leaf_data: Vec<f64> = Vec::with_capacity(n * dims);
        let mut root = NONE;

        // Each job partitions `indices[start..end]` in place; child jobs
        // own disjoint subranges, so the explicit stack replaces the old
        // recursion without any extra index copies.
        let mut jobs: Vec<(usize, usize, Patch)> = vec![(0, n, Patch::Root)];
        while let Some((start, end, patch)) = jobs.pop() {
            let len = end - start;
            let child = if len <= LEAF_SIZE {
                let s = perm.len() as u32;
                for &i in &indices[start..end] {
                    perm.push(i);
                    leaf_data.extend_from_slice(points.row(i as usize));
                }
                let leaf_idx = leaves.len() as u32;
                leaves.push((s, perm.len() as u32));
                LEAF_BIT | leaf_idx
            } else {
                let slice = &mut indices[start..end];
                // Split along the dimension of largest spread for better
                // balance on skewed data.
                let mut best_dim = 0;
                let mut best_spread = f64::NEG_INFINITY;
                for d in 0..dims {
                    let mut lo = f64::INFINITY;
                    let mut hi = f64::NEG_INFINITY;
                    for &i in slice.iter() {
                        let v = points.row(i as usize)[d];
                        lo = lo.min(v);
                        hi = hi.max(v);
                    }
                    let spread = hi - lo;
                    if spread > best_spread {
                        best_spread = spread;
                        best_dim = d;
                    }
                }
                let mid = len / 2;
                slice.select_nth_unstable_by(mid, |&a, &b| {
                    points.row(a as usize)[best_dim]
                        .partial_cmp(&points.row(b as usize)[best_dim])
                        .expect("no NaN")
                        .then(a.cmp(&b))
                });
                // The median point goes to the right bucket; with
                // `1 <= mid < len` both sides are non-empty, so every
                // inner node ends up with two real children.
                let split = points.row(slice[mid] as usize)[best_dim];
                let node_idx = nodes.len() as u32;
                nodes.push(Inner { split, dim: best_dim as u32, left: NONE, right: NONE });
                jobs.push((start, start + mid, Patch::Left(node_idx)));
                jobs.push((start + mid, end, Patch::Right(node_idx)));
                node_idx
            };
            match patch {
                Patch::Root => root = child,
                Patch::Left(p) => nodes[p as usize].left = child,
                Patch::Right(p) => nodes[p as usize].right = child,
            }
        }

        let mut inv = vec![0u32; n];
        for (slot, &orig) in perm.iter().enumerate() {
            inv[orig as usize] = slot as u32;
        }
        let points = PointMatrix::from_flat(leaf_data, dims)?;
        Ok(KdTree { points, perm, inv, nodes, leaves, root, dims })
    }

    /// Number of points in the tree.
    pub fn len(&self) -> usize {
        self.perm.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.perm.is_empty()
    }

    /// Point dimensionality (0 for the empty tree).
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// The point stored at build index `i`.
    pub fn point(&self, i: usize) -> &[f64] {
        self.points.row(self.inv[i] as usize)
    }

    /// The `k` nearest neighbours of `query`, ascending by distance
    /// (squared), ties broken by build index. Returns fewer when the tree
    /// holds fewer than `k` points.
    pub fn nearest(&self, query: &[f64], k: usize) -> Result<Vec<Neighbor>> {
        let mut scratch = NearestScratch::new();
        self.nearest_with(&mut scratch, query, k)?;
        Ok(std::mem::take(&mut scratch.out))
    }

    /// Like [`Self::nearest`], but reuses `scratch` buffers across calls
    /// and leaves the neighbours in `scratch.out` — see the returned slice.
    /// The produced neighbours are identical to `nearest`'s.
    pub fn nearest_with<'s>(
        &self,
        scratch: &'s mut NearestScratch,
        query: &[f64],
        k: usize,
    ) -> Result<&'s [Neighbor]> {
        scratch.heap.clear();
        scratch.out.clear();
        scratch.stack.clear();
        if self.is_empty() || k == 0 {
            return Ok(&scratch.out);
        }
        if query.len() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: query.len() });
        }
        let heap = &mut scratch.heap;
        scratch.stack.push((self.root, 0.0));
        while let Some((child, bound2)) = scratch.stack.pop() {
            // Prune whole subtrees whose one-axis lower bound already
            // exceeds the current k-th neighbour (same `<=` rule as the
            // recursive implementation; checking at pop time can only
            // prune more, never change the exact result).
            if heap.len() == k && bound2 > heap.peek().expect("non-empty heap").dist2 {
                continue;
            }
            if child & LEAF_BIT != 0 {
                let (s, e) = self.leaves[(child & !LEAF_BIT) as usize];
                let (s, e) = (s as usize, e as usize);
                scratch.dists.clear();
                let rows = &self.points.as_flat()[s * self.dims..e * self.dims];
                squared_distances_block(query, rows, self.dims, &mut scratch.dists)
                    .expect("dims validated");
                let mut j = 0;
                while heap.len() < k && j < scratch.dists.len() {
                    let index = self.perm[s + j] as usize;
                    heap.push(HeapEntry { dist2: scratch.dists[j], index });
                    j += 1;
                }
                if j < scratch.dists.len() {
                    // Steady state: cache the k-th candidate in locals so the
                    // common reject (d2 > kth) costs one compare, and the
                    // perm lookup only happens for points that might enter.
                    let top = heap.peek().expect("heap holds k > 0 entries");
                    let (mut kth, mut kth_idx) = (top.dist2, top.index);
                    for (&d2, slot) in scratch.dists[j..].iter().zip(s + j..) {
                        if d2 > kth || d2.is_nan() {
                            continue;
                        }
                        let index = self.perm[slot] as usize;
                        if d2 < kth || index < kth_idx {
                            heap.pop();
                            heap.push(HeapEntry { dist2: d2, index });
                            let top = heap.peek().expect("heap holds k entries");
                            kth = top.dist2;
                            kth_idx = top.index;
                        }
                    }
                }
            } else {
                let node = &self.nodes[child as usize];
                let diff = query[node.dim as usize] - node.split;
                let (near, far) =
                    if diff < 0.0 { (node.left, node.right) } else { (node.right, node.left) };
                // LIFO: push the far side first so the near side is
                // explored before the far bound is re-checked.
                scratch.stack.push((far, diff * diff));
                scratch.stack.push((near, bound2));
            }
        }
        scratch.out.extend(heap.drain().map(|e| (e.dist2, e.index)));
        scratch
            .out
            .sort_by(|a, b| a.0.partial_cmp(&b.0).expect("no NaN distances").then(a.1.cmp(&b.1)));
        Ok(&scratch.out)
    }

    /// Indices of every point inside `region`.
    pub fn range_query(&self, region: &Region) -> Result<Vec<usize>> {
        if self.is_empty() {
            return Ok(Vec::new());
        }
        if region.dims() != self.dims {
            return Err(UeiError::DimensionMismatch { expected: self.dims, actual: region.dims() });
        }
        let mut out = Vec::new();
        let mut stack = vec![self.root];
        while let Some(child) = stack.pop() {
            if child & LEAF_BIT != 0 {
                let (s, e) = self.leaves[(child & !LEAF_BIT) as usize];
                for slot in s as usize..e as usize {
                    if region.contains(self.points.row(slot))? {
                        out.push(self.perm[slot] as usize);
                    }
                }
            } else {
                let node = &self.nodes[child as usize];
                let dim = node.dim as usize;
                // Descend only into subtrees that can intersect the region
                // along the split dimension. Points equal to the split
                // value may sit on either side, so both bounds are
                // conservative (<=).
                if region.lo[dim] <= node.split {
                    stack.push(node.left);
                }
                if node.split <= region.hi[dim] {
                    stack.push(node.right);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::point::squared_distance;
    use uei_types::Rng;

    fn brute_force_knn(points: &[Vec<f64>], query: &[f64], k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = points
            .iter()
            .enumerate()
            .map(|(i, p)| (squared_distance(p, query).unwrap(), i))
            .collect();
        all.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
        all.truncate(k);
        all
    }

    fn random_points(n: usize, dims: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = Rng::new(seed);
        (0..n).map(|_| (0..dims).map(|_| rng.range_f64(-10.0, 10.0)).collect()).collect()
    }

    #[test]
    fn knn_matches_brute_force() {
        let points = random_points(500, 3, 42);
        let tree = KdTree::build(points.clone()).unwrap();
        let mut rng = Rng::new(7);
        for _ in 0..50 {
            let q: Vec<f64> = (0..3).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            for k in [1, 3, 10] {
                let got = tree.nearest(&q, k).unwrap();
                let want = brute_force_knn(&points, &q, k);
                assert_eq!(got, want, "k={k} query={q:?}");
            }
        }
    }

    #[test]
    fn knn_with_duplicates_and_exact_hits() {
        let mut points = random_points(50, 2, 1);
        points.push(points[0].clone());
        points.push(points[0].clone());
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&points[0], 3).unwrap();
        assert_eq!(got[0].0, 0.0);
        assert_eq!(got[1].0, 0.0);
        assert_eq!(got[2].0, 0.0);
        let want = brute_force_knn(&points, &points[0], 3);
        assert_eq!(got, want);
    }

    #[test]
    fn k_larger_than_n_returns_all() {
        let points = random_points(5, 2, 3);
        let tree = KdTree::build(points.clone()).unwrap();
        let got = tree.nearest(&[0.0, 0.0], 100).unwrap();
        assert_eq!(got.len(), 5);
    }

    #[test]
    fn empty_tree() {
        let tree = KdTree::build(vec![]).unwrap();
        assert!(tree.is_empty());
        assert_eq!(tree.nearest(&[1.0], 3).unwrap(), vec![]);
        let region = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&region).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn build_rejects_bad_points() {
        assert!(KdTree::build(vec![vec![1.0], vec![1.0, 2.0]]).is_err());
        assert!(KdTree::build(vec![vec![f64::NAN]]).is_err());
        assert!(KdTree::build(vec![vec![]]).is_err());
    }

    #[test]
    fn query_dim_mismatch() {
        let tree = KdTree::build(random_points(10, 3, 5)).unwrap();
        assert!(tree.nearest(&[0.0, 0.0], 1).is_err());
    }

    #[test]
    fn range_query_matches_filter() {
        let points = random_points(400, 2, 9);
        let tree = KdTree::build(points.clone()).unwrap();
        let region = Region::new(vec![-5.0, 0.0], vec![5.0, 8.0]).unwrap();
        let got = tree.range_query(&region).unwrap();
        let want: Vec<usize> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| region.contains(p).unwrap())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn range_query_closed_region() {
        let points = vec![vec![0.0], vec![1.0], vec![2.0]];
        let tree = KdTree::build(points).unwrap();
        let closed = Region::closed(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&closed).unwrap(), vec![0, 1]);
        let open = Region::new(vec![0.0], vec![1.0]).unwrap();
        assert_eq!(tree.range_query(&open).unwrap(), vec![0]);
    }

    #[test]
    fn nearest_is_deterministic() {
        let points = random_points(100, 4, 11);
        let tree = KdTree::build(points).unwrap();
        let q = vec![0.0; 4];
        let a = tree.nearest(&q, 7).unwrap();
        let b = tree.nearest(&q, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn nearest_with_scratch_matches_fresh_calls() {
        let points = random_points(300, 3, 17);
        let tree = KdTree::build(points).unwrap();
        let mut scratch = NearestScratch::new();
        let mut rng = Rng::new(23);
        for _ in 0..40 {
            let q: Vec<f64> = (0..3).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            let fresh = tree.nearest(&q, 5).unwrap();
            let reused = tree.nearest_with(&mut scratch, &q, 5).unwrap();
            assert_eq!(fresh, reused);
        }
        // Error paths leave the scratch reusable.
        assert!(tree.nearest_with(&mut scratch, &[0.0], 5).is_err());
        assert_eq!(tree.nearest_with(&mut scratch, &[0.0, 0.0, 0.0], 0).unwrap(), &[]);
    }

    #[test]
    fn scratch_reuse_across_tree_shapes_leaks_no_state() {
        // One scratch, alternating between trees of different sizes,
        // depths, and dimensionalities (including one small enough to be a
        // single leaf and one empty): every reused answer must equal a
        // fresh query, and a k larger than a smaller tree must not surface
        // stale candidates from a bigger one.
        let big = KdTree::build(random_points(500, 4, 3)).unwrap();
        let small = KdTree::build(random_points(7, 2, 5)).unwrap();
        let other_dims = KdTree::build(random_points(90, 6, 8)).unwrap();
        let empty = KdTree::build(vec![]).unwrap();
        let mut scratch = NearestScratch::new();
        let mut rng = Rng::new(31);
        for round in 0..25 {
            let q4: Vec<f64> = (0..4).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            let q2: Vec<f64> = (0..2).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            let q6: Vec<f64> = (0..6).map(|_| rng.range_f64(-12.0, 12.0)).collect();
            let k = 1 + round % 12;
            assert_eq!(
                big.nearest_with(&mut scratch, &q4, k).unwrap(),
                big.nearest(&q4, k).unwrap()
            );
            // k > len(small): must return exactly 7 points, none from `big`.
            let got = small.nearest_with(&mut scratch, &q2, 20).unwrap().to_vec();
            assert_eq!(got, small.nearest(&q2, 20).unwrap());
            assert_eq!(got.len(), 7);
            assert_eq!(
                other_dims.nearest_with(&mut scratch, &q6, k).unwrap(),
                other_dims.nearest(&q6, k).unwrap()
            );
            assert_eq!(empty.nearest_with(&mut scratch, &[1.0], k).unwrap(), &[]);
        }
    }

    #[test]
    fn high_dim_small_n() {
        let points = random_points(20, 8, 13);
        let tree = KdTree::build(points.clone()).unwrap();
        let q = vec![1.0; 8];
        assert_eq!(tree.nearest(&q, 5).unwrap(), brute_force_knn(&points, &q, 5));
    }

    #[test]
    fn point_accessor_survives_leaf_permutation() {
        let points = random_points(130, 3, 19);
        let tree = KdTree::from_matrix(PointMatrix::from_rows(&points).unwrap()).unwrap();
        assert_eq!(tree.len(), 130);
        assert_eq!(tree.dims(), 3);
        for (i, p) in points.iter().enumerate() {
            assert_eq!(tree.point(i), p.as_slice(), "build index {i}");
        }
    }

    #[test]
    fn duplicate_heavy_build_stays_balanced_and_exact() {
        // Every coordinate drawn from {0, 1}: maximal duplication, zero
        // spread on most splits. The build must terminate, and queries must
        // still match brute force exactly (including index tie-breaks).
        let mut rng = Rng::new(77);
        let points: Vec<Vec<f64>> =
            (0..300).map(|_| (0..2).map(|_| rng.below(2) as f64).collect()).collect();
        let tree = KdTree::build(points.clone()).unwrap();
        for q in [[0.0, 0.0], [1.0, 1.0], [0.4, 0.6]] {
            for k in [1, 5, 40, 300] {
                assert_eq!(tree.nearest(&q, k).unwrap(), brute_force_knn(&points, &q, k));
            }
        }
    }

    #[test]
    #[ignore = "1M-point stack-safety regression; run with --ignored"]
    fn million_point_duplicate_build_does_not_overflow() {
        // Highly duplicated, presorted 1-d input — the worst case for a
        // recursive build. The explicit work stack must complete it inside
        // a default-size thread stack.
        let n = 1_000_000usize;
        let data: Vec<f64> = (0..n).map(|i| (i % 4) as f64).collect();
        let tree = KdTree::from_matrix(PointMatrix::from_flat(data, 1).unwrap()).unwrap();
        assert_eq!(tree.len(), n);
        let got = tree.nearest(&[0.9], 3).unwrap();
        // Nearest value is 1.0; ties break toward the lowest build index,
        // which for value 1.0 is index 1.
        let d = 1.0 - 0.9;
        assert_eq!(got[0], (d * d, 1));
        assert_eq!(got[1].1, 5);
        assert_eq!(got[2].1, 9);
    }
}
