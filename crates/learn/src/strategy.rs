//! Query strategies: how the next example to label is chosen.
//!
//! Uncertainty sampling (Lewis & Gale 1994) "identifies the unlabeled items
//! that are closest to the current decision boundary" and is the strategy
//! both the paper's background (§2.1) and its evaluation use. For binary
//! classification, least confidence, margin, and entropy are monotone
//! transformations of each other, but all three are provided because the
//! committee strategy and multi-class extensions distinguish them.

use uei_types::{DataPoint, Result, Rng, UeiError};

use crate::model::Classifier;

/// How "informativeness" of an unlabeled example is scored from the
/// model's posterior `p = P(positive | x)`.
///
/// ```
/// use uei_learn::UncertaintyMeasure;
///
/// let lc = UncertaintyMeasure::LeastConfidence;
/// assert_eq!(lc.score(0.5), 0.5);          // maximal at the boundary
/// assert_eq!(lc.score(1.0), 0.0);          // zero when certain
/// assert_eq!(lc.score(0.2), lc.score(0.8)); // symmetric
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum UncertaintyMeasure {
    /// `u = 1 − max(p, 1−p)` (paper Eq. 1).
    #[default]
    LeastConfidence,
    /// `u = 1 − |p − (1−p)|` (margin between the two classes).
    Margin,
    /// Binary entropy `−p·log p − (1−p)·log(1−p)` (in bits).
    Entropy,
}

impl UncertaintyMeasure {
    /// Scores a posterior; higher means more informative. All three
    /// measures are maximal at `p = 0.5` and zero at `p ∈ {0, 1}`.
    pub fn score(&self, p: f64) -> f64 {
        let p = p.clamp(0.0, 1.0);
        match self {
            UncertaintyMeasure::LeastConfidence => 1.0 - p.max(1.0 - p),
            UncertaintyMeasure::Margin => 1.0 - (2.0 * p - 1.0).abs(),
            UncertaintyMeasure::Entropy => {
                let term = |q: f64| if q <= 0.0 { 0.0 } else { -q * q.log2() };
                term(p) + term(1.0 - p)
            }
        }
    }

    /// Scores a whole pool of points in one batch call: posterior
    /// evaluation goes through [`Classifier::predict_proba_batch`] (which
    /// parallelizes large pools), then the measure is applied per element.
    /// `score_points(model, pts)[i] == score(model.predict_proba(pts[i]))`
    /// exactly.
    pub fn score_points(&self, model: &dyn Classifier, points: &[&[f64]]) -> Vec<f64> {
        let mut probs = model.predict_proba_batch(points);
        for p in &mut probs {
            *p = self.score(*p);
        }
        probs
    }
}

/// Descending comparison of two scores with NaN ordered *last* (a NaN
/// score must never win a ranking, and must never panic a sort). Ties are
/// resolved by the caller via `.then(...)`.
pub fn cmp_score_desc(a: f64, b: f64) -> std::cmp::Ordering {
    let key = |v: f64| if v.is_nan() { f64::NEG_INFINITY } else { v };
    key(b).total_cmp(&key(a))
}

/// Indices of the `k` highest scores, descending, ties toward the lower
/// index; NaN scores rank last instead of panicking.
///
/// Uses `select_nth_unstable` to partition the top `k` in O(n) before
/// sorting only that prefix — O(n + k log k) instead of the full
/// O(n log n) sort, which matters when ranking a few prefetch candidates
/// out of thousands of index points every iteration.
pub fn top_k_desc(scores: &[f64], k: usize) -> Vec<usize> {
    let mut ids: Vec<usize> = (0..scores.len()).collect();
    let k = k.min(ids.len());
    if k == 0 {
        return Vec::new();
    }
    let cmp = |&a: &usize, &b: &usize| cmp_score_desc(scores[a], scores[b]).then(a.cmp(&b));
    if k < ids.len() {
        ids.select_nth_unstable_by(k - 1, cmp);
        ids.truncate(k);
    }
    ids.sort_unstable_by(cmp);
    ids
}

/// A pool-based query strategy.
pub trait QueryStrategy {
    /// Index of the pool element to present for labeling next, or `None`
    /// when the pool is empty. `x* = argmax_x u(x)` for uncertainty-based
    /// strategies (paper Eq. 2).
    fn select(&mut self, model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize>;

    /// Strategy name for reports.
    fn name(&self) -> &'static str;
}

/// Uncertainty sampling: pick the pool element with the highest
/// uncertainty score; ties broken by lowest row id (deterministic).
#[derive(Debug, Default, Clone)]
pub struct UncertaintySampling {
    measure: UncertaintyMeasure,
}

impl UncertaintySampling {
    /// Creates the strategy with the given measure.
    pub fn new(measure: UncertaintyMeasure) -> Self {
        UncertaintySampling { measure }
    }

    /// The configured measure.
    pub fn measure(&self) -> UncertaintyMeasure {
        self.measure
    }
}

impl QueryStrategy for UncertaintySampling {
    fn select(&mut self, model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize> {
        let scores = self.measure.score_points(model, &pool_refs(pool));
        let mut best: Option<(f64, usize)> = None;
        for (i, point) in pool.iter().enumerate() {
            let u = scores[i];
            let better = match best {
                None => true,
                Some((bu, bi)) => u > bu || (u == bu && point.id < pool[bi].id),
            };
            if better {
                best = Some((u, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn name(&self) -> &'static str {
        "uncertainty-sampling"
    }
}

/// Uniform random selection — the strategy main-memory systems fall back
/// to when they can only sample the dataset, and the natural ablation
/// baseline for uncertainty sampling.
#[derive(Debug)]
pub struct RandomSampling {
    rng: Rng,
}

impl RandomSampling {
    /// Creates the strategy with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSampling { rng: Rng::new(seed) }
    }
}

impl QueryStrategy for RandomSampling {
    fn select(&mut self, _model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize> {
        if pool.is_empty() {
            None
        } else {
            Some(self.rng.below_usize(pool.len()))
        }
    }

    fn name(&self) -> &'static str {
        "random-sampling"
    }
}

/// Borrows every pool point's coordinate row, in pool order — the shape
/// [`Classifier::predict_proba_batch`] wants.
fn pool_refs(pool: &[DataPoint]) -> Vec<&[f64]> {
    pool.iter().map(|p| p.values.as_slice()).collect()
}

/// Scores every pool element with a measure, returning `(index, score)`
/// sorted descending — used by batch selection and by the experiments'
/// diagnostic output. Scoring runs through the batch path (parallel for
/// large pools); NaN scores sort last instead of panicking.
pub fn rank_pool(
    model: &dyn Classifier,
    pool: &[DataPoint],
    measure: UncertaintyMeasure,
) -> Vec<(usize, f64)> {
    let scores = measure.score_points(model, &pool_refs(pool));
    let mut scored: Vec<(usize, f64)> = scores.into_iter().enumerate().collect();
    scored.sort_by(|a, b| cmp_score_desc(a.1, b.1).then(a.0.cmp(&b.0)));
    scored
}

/// Selects the `batch` most uncertain pool indices (descending score).
///
/// Unlike [`rank_pool`] this never sorts the whole pool: the top `batch`
/// are partitioned out in O(n) via [`top_k_desc`].
pub fn select_batch(
    model: &dyn Classifier,
    pool: &[DataPoint],
    measure: UncertaintyMeasure,
    batch: usize,
) -> Result<Vec<usize>> {
    if batch == 0 {
        return Err(UeiError::invalid_config("batch size must be >= 1"));
    }
    let scores = measure.score_points(model, &pool_refs(pool));
    Ok(top_k_desc(&scores, batch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use uei_types::Label;

    /// Posterior = x-coordinate clamped to [0,1]; lets tests place points
    /// at exact probabilities.
    struct CoordModel;
    impl Classifier for CoordModel {
        fn predict_proba(&self, x: &[f64]) -> f64 {
            x[0].clamp(0.0, 1.0)
        }
        fn dims(&self) -> usize {
            1
        }
    }

    fn pool(ps: &[f64]) -> Vec<DataPoint> {
        ps.iter().enumerate().map(|(i, &p)| DataPoint::new(i as u64, vec![p])).collect()
    }

    #[test]
    fn measures_peak_at_half() {
        for m in [
            UncertaintyMeasure::LeastConfidence,
            UncertaintyMeasure::Margin,
            UncertaintyMeasure::Entropy,
        ] {
            assert!(m.score(0.5) > m.score(0.3), "{m:?}");
            assert!(m.score(0.3) > m.score(0.1), "{m:?}");
            assert_eq!(m.score(0.0), 0.0, "{m:?}");
            assert_eq!(m.score(1.0), 0.0, "{m:?}");
            // Symmetry.
            assert!((m.score(0.3) - m.score(0.7)).abs() < 1e-12, "{m:?}");
        }
        assert_eq!(UncertaintyMeasure::Entropy.score(0.5), 1.0);
        assert_eq!(UncertaintyMeasure::LeastConfidence.score(0.5), 0.5);
        assert_eq!(UncertaintyMeasure::Margin.score(0.5), 1.0);
    }

    #[test]
    fn uncertainty_sampling_picks_closest_to_half() {
        let mut strategy = UncertaintySampling::default();
        let pool = pool(&[0.1, 0.45, 0.9, 0.7]);
        assert_eq!(strategy.select(&CoordModel, &pool), Some(1));
    }

    #[test]
    fn uncertainty_sampling_tie_breaks_by_id() {
        let mut strategy = UncertaintySampling::default();
        // 0.4 and 0.6 are equally uncertain; the lower id (index 0) wins.
        let pool = pool(&[0.6, 0.4]);
        assert_eq!(strategy.select(&CoordModel, &pool), Some(0));
    }

    #[test]
    fn empty_pool_returns_none() {
        let mut s = UncertaintySampling::default();
        assert_eq!(s.select(&CoordModel, &[]), None);
        let mut r = RandomSampling::new(1);
        assert_eq!(r.select(&CoordModel, &[]), None);
    }

    #[test]
    fn random_sampling_is_in_range_and_deterministic() {
        let pool = pool(&[0.1, 0.2, 0.3, 0.4]);
        let mut r1 = RandomSampling::new(42);
        let mut r2 = RandomSampling::new(42);
        for _ in 0..20 {
            let a = r1.select(&CoordModel, &pool).unwrap();
            let b = r2.select(&CoordModel, &pool).unwrap();
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn rank_pool_descends() {
        let pool = pool(&[0.05, 0.5, 0.8]);
        let ranked = rank_pool(&CoordModel, &pool, UncertaintyMeasure::LeastConfidence);
        assert_eq!(ranked[0].0, 1);
        assert!(ranked[0].1 >= ranked[1].1 && ranked[1].1 >= ranked[2].1);
    }

    #[test]
    fn select_batch_sizes() {
        let pool = pool(&[0.05, 0.5, 0.8, 0.45]);
        let batch = select_batch(&CoordModel, &pool, UncertaintyMeasure::Margin, 2).unwrap();
        assert_eq!(batch, vec![1, 3]);
        assert!(select_batch(&CoordModel, &pool, UncertaintyMeasure::Margin, 0).is_err());
        let all = select_batch(&CoordModel, &pool, UncertaintyMeasure::Margin, 99).unwrap();
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn top_k_matches_full_sort() {
        let scores = [0.3, 0.9, 0.1, 0.9, 0.5, 0.0, 0.7];
        let full = top_k_desc(&scores, scores.len());
        assert_eq!(full, vec![1, 3, 6, 4, 0, 2, 5]);
        for k in 0..=scores.len() + 2 {
            assert_eq!(top_k_desc(&scores, k), full[..k.min(scores.len())]);
        }
    }

    #[test]
    fn nan_scores_rank_last_without_panicking() {
        let scores = [0.2, f64::NAN, 0.8, f64::NAN];
        assert_eq!(top_k_desc(&scores, 4), vec![2, 0, 1, 3]);
        // A model emitting NaN must not panic ranking either.
        struct NanModel;
        impl Classifier for NanModel {
            fn predict_proba(&self, x: &[f64]) -> f64 {
                if x[0] < 0.0 {
                    f64::NAN
                } else {
                    x[0]
                }
            }
            fn dims(&self) -> usize {
                1
            }
        }
        let pool = pool(&[-1.0, 0.5, 0.9]);
        let ranked = rank_pool(&NanModel, &pool, UncertaintyMeasure::LeastConfidence);
        assert_eq!(ranked[0].0, 1);
        assert_eq!(ranked[2].0, 0, "NaN-scored point must rank last");
        let batch = select_batch(&NanModel, &pool, UncertaintyMeasure::LeastConfidence, 2).unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn strategy_names() {
        assert_eq!(UncertaintySampling::default().name(), "uncertainty-sampling");
        assert_eq!(RandomSampling::new(0).name(), "random-sampling");
    }

    #[test]
    fn works_with_trained_model() {
        // End-to-end: the most uncertain point of a real model is between
        // the clusters.
        let examples = vec![
            (vec![0.0], Label::Negative),
            (vec![0.2], Label::Negative),
            (vec![0.8], Label::Positive),
            (vec![1.0], Label::Positive),
        ];
        // k = 3: with k = 2 DWKNN degenerates to the nearest label (the
        // farthest neighbour always has zero dual weight).
        let model = crate::dwknn::Dwknn::fit(3, &examples).unwrap();
        let pool = vec![
            DataPoint::new(0u64, vec![0.05]),
            DataPoint::new(1u64, vec![0.5]),
            DataPoint::new(2u64, vec![0.95]),
        ];
        let mut strategy = UncertaintySampling::default();
        assert_eq!(strategy.select(&model, &pool), Some(1));
    }
}
