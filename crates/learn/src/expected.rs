//! Expectation-based query strategies.
//!
//! The paper's background (§2.1) lists, alongside uncertainty sampling and
//! query-by-committee, two more families of "informativeness" measures that
//! active-learning IDE systems may swap in, noting that "these techniques
//! are often interchangeable":
//!
//! - **Expected Error Reduction** (Roy & McCallum 2001; Zhang et al. 2017
//!   in the paper's references): choose the candidate whose labeling —
//!   averaged over the model's own posterior for that label — minimizes
//!   the expected uncertainty of the retrained model over the pool.
//! - **Expected Model Change** (Cai et al. 2013; Freytag et al. 2014):
//!   choose the candidate whose labeling would change the model most;
//!   for kNN-family models the natural surrogate is the total posterior
//!   shift the new example induces on the pool.
//!
//! Both strategies retrain one model per (candidate, label) pair, so they
//! cost O(|candidates| × |pool|) model evaluations per selection — exactly
//! why the paper calls uncertainty sampling "the most commonly used
//! because of its simplicity and efficiency". The implementations bound
//! the candidate and evaluation sets by subsampling.

use uei_types::{DataPoint, Label, Result, Rng, UeiError};

use crate::model::{Classifier, EstimatorKind};
use crate::strategy::QueryStrategy;

/// Configuration shared by the expectation-based strategies.
#[derive(Debug, Clone)]
pub struct ExpectationConfig {
    /// The estimator retrained for each hypothetical label.
    pub estimator: EstimatorKind,
    /// At most this many candidates are scored per selection (subsampled
    /// uniformly from the pool).
    pub max_candidates: usize,
    /// At most this many pool points form the evaluation set.
    pub max_evaluation: usize,
    /// Seed for the subsampling.
    pub seed: u64,
}

impl Default for ExpectationConfig {
    fn default() -> Self {
        ExpectationConfig {
            estimator: EstimatorKind::Dwknn { k: 5 },
            max_candidates: 32,
            max_evaluation: 256,
            seed: 0xE12E,
        }
    }
}

/// Expected Error Reduction: pick the candidate whose (posterior-weighted)
/// labeling leaves the retrained model least uncertain about the pool.
pub struct ExpectedErrorReduction {
    config: ExpectationConfig,
    labeled: Vec<(Vec<f64>, Label)>,
    rng: Rng,
}

impl ExpectedErrorReduction {
    /// Creates the strategy. `labeled` must be kept in sync with the
    /// session's labeled set via [`Self::observe`].
    pub fn new(config: ExpectationConfig, labeled: Vec<(Vec<f64>, Label)>) -> Self {
        let rng = Rng::new(config.seed);
        ExpectedErrorReduction { config, labeled, rng }
    }

    /// Records a freshly labeled example so future retrains include it.
    pub fn observe(&mut self, x: Vec<f64>, label: Label) {
        self.labeled.push((x, label));
    }

    /// Number of labeled examples the strategy knows about.
    pub fn known_labels(&self) -> usize {
        self.labeled.len()
    }

    /// Mean least-confidence uncertainty of `model` over `eval`.
    ///
    /// Goes through [`Classifier::predict_proba_batch`] — the same blocked,
    /// scratch-reusing path index-point scoring uses — which is contractually
    /// bit-identical to per-point [`Classifier::uncertainty`] calls.
    fn expected_error(model: &dyn Classifier, eval: &[&DataPoint]) -> f64 {
        if eval.is_empty() {
            return 0.0;
        }
        let refs: Vec<&[f64]> = eval.iter().map(|p| p.values.as_slice()).collect();
        let measure = crate::strategy::UncertaintyMeasure::LeastConfidence;
        let total: f64 = measure.score_points(model, &refs).into_iter().sum();
        total / eval.len() as f64
    }

    fn subsample<'a>(rng: &mut Rng, pool: &'a [DataPoint], k: usize) -> Vec<&'a DataPoint> {
        rng.sample_indices(pool.len(), k).into_iter().map(|i| &pool[i]).collect()
    }

    /// Scores candidate indices; exposed for tests. Lower is better.
    pub fn score_candidates(
        &mut self,
        model: &dyn Classifier,
        pool: &[DataPoint],
    ) -> Result<Vec<(usize, f64)>> {
        if self.labeled.is_empty() {
            return Err(UeiError::invalid_state(
                "ExpectedErrorReduction needs the current labeled set",
            ));
        }
        let candidate_ix = self.rng.sample_indices(pool.len(), self.config.max_candidates);
        let eval = Self::subsample(&mut self.rng, pool, self.config.max_evaluation);
        let mut scored = Vec::with_capacity(candidate_ix.len());
        for i in candidate_ix {
            let candidate = &pool[i];
            let p_pos = model.predict_proba(&candidate.values).clamp(0.0, 1.0);
            let mut expected = 0.0;
            for (label, weight) in [(Label::Positive, p_pos), (Label::Negative, 1.0 - p_pos)] {
                if weight <= 0.0 {
                    continue;
                }
                let mut hypothetical = self.labeled.clone();
                hypothetical.push((candidate.values.clone(), label));
                let retrained = self.config.estimator.train(&hypothetical)?;
                expected += weight * Self::expected_error(&retrained, &eval);
            }
            scored.push((i, expected));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite scores").then(a.0.cmp(&b.0)));
        Ok(scored)
    }
}

impl QueryStrategy for ExpectedErrorReduction {
    fn select(&mut self, model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize> {
        if pool.is_empty() {
            return None;
        }
        match self.score_candidates(model, pool) {
            Ok(scored) => scored.first().map(|&(i, _)| i),
            Err(_) => None,
        }
    }

    fn name(&self) -> &'static str {
        "expected-error-reduction"
    }
}

/// Expected Model Change: pick the candidate whose labeling shifts the
/// model's pool posteriors the most (posterior-weighted L1 shift).
pub struct ExpectedModelChange {
    config: ExpectationConfig,
    labeled: Vec<(Vec<f64>, Label)>,
    rng: Rng,
}

impl ExpectedModelChange {
    /// Creates the strategy with the current labeled set.
    pub fn new(config: ExpectationConfig, labeled: Vec<(Vec<f64>, Label)>) -> Self {
        let rng = Rng::new(config.seed ^ 0x00C0_FFEE);
        ExpectedModelChange { config, labeled, rng }
    }

    /// Records a freshly labeled example.
    pub fn observe(&mut self, x: Vec<f64>, label: Label) {
        self.labeled.push((x, label));
    }

    /// Posterior-weighted L1 shift over `eval`, scored through the batch
    /// path of both models (bit-identical to the scalar loop, one tree
    /// traversal scratch per worker instead of one per call).
    fn model_shift(before: &dyn Classifier, after: &dyn Classifier, eval: &[&DataPoint]) -> f64 {
        let refs: Vec<&[f64]> = eval.iter().map(|p| p.values.as_slice()).collect();
        let pb = before.predict_proba_batch(&refs);
        let pa = after.predict_proba_batch(&refs);
        pb.iter().zip(&pa).map(|(b, a)| (b - a).abs()).sum()
    }
}

impl QueryStrategy for ExpectedModelChange {
    fn select(&mut self, model: &dyn Classifier, pool: &[DataPoint]) -> Option<usize> {
        if pool.is_empty() || self.labeled.is_empty() {
            return None;
        }
        let candidate_ix = self.rng.sample_indices(pool.len(), self.config.max_candidates);
        let eval: Vec<&DataPoint> = self
            .rng
            .sample_indices(pool.len(), self.config.max_evaluation)
            .into_iter()
            .map(|i| &pool[i])
            .collect();
        let mut best: Option<(f64, usize)> = None;
        for i in candidate_ix {
            let candidate = &pool[i];
            let p_pos = model.predict_proba(&candidate.values).clamp(0.0, 1.0);
            let mut expected_change = 0.0;
            for (label, weight) in [(Label::Positive, p_pos), (Label::Negative, 1.0 - p_pos)] {
                if weight <= 0.0 {
                    continue;
                }
                let mut hypothetical = self.labeled.clone();
                hypothetical.push((candidate.values.clone(), label));
                let Ok(retrained) = self.config.estimator.train(&hypothetical) else {
                    continue;
                };
                expected_change += weight * Self::model_shift(model, &retrained, &eval);
            }
            let better = match best {
                None => true,
                Some((b, bi)) => expected_change > b || (expected_change == b && i < bi),
            };
            if better {
                best = Some((expected_change, i));
            }
        }
        best.map(|(_, i)| i)
    }

    fn name(&self) -> &'static str {
        "expected-model-change"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled_clusters() -> Vec<(Vec<f64>, Label)> {
        vec![
            (vec![0.0, 0.0], Label::Negative),
            (vec![0.1, 0.1], Label::Negative),
            (vec![1.0, 1.0], Label::Positive),
            (vec![0.9, 0.9], Label::Positive),
        ]
    }

    fn pool() -> Vec<DataPoint> {
        // Index 1 sits on the decision boundary; 0 and 2 are deep inside
        // the clusters.
        vec![
            DataPoint::new(0u64, vec![0.05, 0.05]),
            DataPoint::new(1u64, vec![0.5, 0.5]),
            DataPoint::new(2u64, vec![0.95, 0.95]),
        ]
    }

    fn current_model() -> Box<dyn Classifier> {
        EstimatorKind::Dwknn { k: 3 }.train(&labeled_clusters()).unwrap()
    }

    #[test]
    fn eer_prefers_the_boundary_point() {
        let config =
            ExpectationConfig { max_candidates: 10, max_evaluation: 10, ..Default::default() };
        let mut eer = ExpectedErrorReduction::new(config, labeled_clusters());
        let model = current_model();
        let pick = eer.select(&model, &pool()).unwrap();
        assert_eq!(pick, 1, "labeling the boundary point reduces expected error most");
        assert_eq!(eer.name(), "expected-error-reduction");
    }

    #[test]
    fn eer_scores_are_ordered_and_finite() {
        let mut eer = ExpectedErrorReduction::new(ExpectationConfig::default(), labeled_clusters());
        let model = current_model();
        let scored = eer.score_candidates(&model, &pool()).unwrap();
        assert_eq!(scored.len(), 3);
        for w in scored.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert!(scored.iter().all(|(_, s)| s.is_finite() && *s >= 0.0));
    }

    #[test]
    fn eer_requires_labeled_set_and_handles_empty_pool() {
        let mut empty = ExpectedErrorReduction::new(ExpectationConfig::default(), vec![]);
        let model = current_model();
        assert!(empty.select(&model, &pool()).is_none());
        let mut ok = ExpectedErrorReduction::new(ExpectationConfig::default(), labeled_clusters());
        assert!(ok.select(&model, &[]).is_none());
    }

    #[test]
    fn eer_observe_grows_training_set() {
        let mut eer = ExpectedErrorReduction::new(ExpectationConfig::default(), labeled_clusters());
        assert_eq!(eer.known_labels(), 4);
        eer.observe(vec![0.5, 0.5], Label::Positive);
        assert_eq!(eer.known_labels(), 5);
    }

    #[test]
    fn emc_prefers_influential_points() {
        let config =
            ExpectationConfig { max_candidates: 10, max_evaluation: 10, ..Default::default() };
        let mut emc = ExpectedModelChange::new(config, labeled_clusters());
        let model = current_model();
        let pick = emc.select(&model, &pool()).unwrap();
        // The boundary point flips nearby posteriors either way; the deep
        // points change almost nothing.
        assert_eq!(pick, 1);
        assert_eq!(emc.name(), "expected-model-change");
    }

    #[test]
    fn emc_empty_inputs() {
        let mut emc = ExpectedModelChange::new(ExpectationConfig::default(), vec![]);
        let model = current_model();
        assert!(emc.select(&model, &pool()).is_none());
        let mut ok = ExpectedModelChange::new(ExpectationConfig::default(), labeled_clusters());
        assert!(ok.select(&model, &[]).is_none());
    }

    #[test]
    fn strategies_are_deterministic_per_seed() {
        let model = current_model();
        let mut a = ExpectedErrorReduction::new(ExpectationConfig::default(), labeled_clusters());
        let mut b = ExpectedErrorReduction::new(ExpectationConfig::default(), labeled_clusters());
        assert_eq!(a.select(&model, &pool()), b.select(&model, &pool()));
    }
}
