//! # uei-learn
//!
//! The active-learning toolkit of the UEI reproduction — the substrate the
//! paper's REQUEST system draws on (§2.1, §4.1):
//!
//! - [`model`] — the [`model::Classifier`] trait (binary, probabilistic, as
//!   required by uncertainty sampling) and a config-driven
//!   [`model::EstimatorKind`] factory;
//! - [`kdtree`] — a kd-tree used by all nearest-neighbour classifiers and
//!   by range queries;
//! - [`dwknn`] — the **dual weighted k-nearest-neighbour** classifier
//!   (Gou et al. 2012), the uncertainty estimator of the paper's evaluation
//!   (Table 1);
//! - [`knn`] — plain and inverse-distance-weighted kNN baselines;
//! - [`naive_bayes`] — Gaussian Naive Bayes (the paper lists NB as an
//!   alternative probabilistic model for uncertainty sampling);
//! - [`svm`] — a linear SVM trained with Pegasos SGD, calibrated into a
//!   probability via [`platt`] scaling;
//! - [`strategy`] — query strategies: uncertainty sampling (least
//!   confidence / margin / entropy), random sampling,
//!   query-by-committee ([`committee`]), and the expectation-based
//!   strategies of §2.1's survey ([`expected`]: expected error reduction,
//!   expected model change);
//! - [`metrics`] — F-measure and friends (the paper's accuracy metric);
//! - [`scale`] — min–max feature scaling so that distance-based estimators
//!   are not dominated by wide-domain attributes;
//! - [`dataset`] — labeled/unlabeled pools used by the exploration loop.

#![warn(missing_docs)]
// Lint policy: `!(a <= b)` comparisons are deliberate — they reject NaN as
// well as inverted bounds, which `a > b` would silently accept. Indexed
// loops that clippy flags as `needless_range_loop` walk several parallel
// arrays by dimension; the index form keeps that symmetry readable.
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::needless_range_loop)]

pub mod batch;
pub mod committee;
pub mod dataset;
pub mod delta;
pub mod dwknn;
pub mod expected;
pub mod kdtree;
pub mod knn;
pub mod metrics;
pub mod model;
pub mod naive_bayes;
pub mod platt;
pub mod scale;
pub mod strategy;
pub mod svm;

pub use batch::{
    map_batch, map_batch_at, map_batch_with, map_batch_with_at, map_matrix_range_at,
    should_parallelize, should_parallelize_at, PARALLEL_THRESHOLD,
};
pub use committee::Committee;
pub use dataset::{LabeledSet, UnlabeledPool};
pub use delta::{
    knn_influence_delta, knn_influence_delta_flat, knn_influence_delta_flat_range, ModelDelta,
    ScoredBatch,
};
pub use dwknn::Dwknn;
pub use expected::{ExpectationConfig, ExpectedErrorReduction, ExpectedModelChange};
pub use kdtree::{KdTree, NearestScratch};
pub use knn::Knn;
pub use metrics::{ConfusionMatrix, Metrics};
pub use model::{Classifier, EstimatorKind};
pub use naive_bayes::GaussianNb;
pub use scale::{MinMaxScaler, ScaledClassifier};
pub use strategy::{QueryStrategy, UncertaintyMeasure, UncertaintySampling};
pub use svm::LinearSvm;
