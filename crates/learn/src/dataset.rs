//! Labeled and unlabeled pools used by the exploration loop.
//!
//! Algorithm 2 keeps a labeled set `L` (everything the user has judged) and
//! an unlabeled cache `U` (the uniform sample plus the currently loaded
//! uncertain region). These containers enforce the bookkeeping the
//! pseudo-code implies: a point moves from `U` to `L` when labeled, never
//! appears twice in `L`, and `U` can drop and re-admit region data without
//! disturbing the uniform sample.

use std::collections::HashMap;

use uei_types::{DataPoint, Label, Result, RowId, UeiError};

/// The labeled set `L`.
#[derive(Debug, Default, Clone)]
pub struct LabeledSet {
    entries: Vec<(DataPoint, Label)>,
    by_id: HashMap<RowId, usize>,
}

impl LabeledSet {
    /// Creates an empty labeled set.
    pub fn new() -> Self {
        LabeledSet::default()
    }

    /// Number of labeled examples.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no example has been labeled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds a labeled example; re-labeling the same row id is rejected
    /// (the simulated user is consistent, so a duplicate means the loop
    /// presented an already-labeled point — a protocol bug).
    pub fn add(&mut self, point: DataPoint, label: Label) -> Result<()> {
        if self.by_id.contains_key(&point.id) {
            return Err(UeiError::invalid_state(format!("row {} labeled twice", point.id)));
        }
        self.by_id.insert(point.id, self.entries.len());
        self.entries.push((point, label));
        Ok(())
    }

    /// Whether `id` has been labeled.
    pub fn contains(&self, id: RowId) -> bool {
        self.by_id.contains_key(&id)
    }

    /// The label previously assigned to `id`.
    pub fn label_of(&self, id: RowId) -> Option<Label> {
        self.by_id.get(&id).map(|&i| self.entries[i].1)
    }

    /// Whether both classes are represented — the precondition for
    /// training the initial model (paper §3.2).
    pub fn has_both_classes(&self) -> bool {
        let mut pos = false;
        let mut neg = false;
        for (_, l) in &self.entries {
            match l {
                Label::Positive => pos = true,
                Label::Negative => neg = true,
            }
            if pos && neg {
                return true;
            }
        }
        false
    }

    /// Count of positive labels.
    pub fn num_positive(&self) -> usize {
        self.entries.iter().filter(|(_, l)| l.is_positive()).count()
    }

    /// The examples in insertion order.
    pub fn entries(&self) -> &[(DataPoint, Label)] {
        &self.entries
    }

    /// Training view `(values, label)` — the shape classifier `fit`s take.
    pub fn training_data(&self) -> Vec<(Vec<f64>, Label)> {
        self.entries.iter().map(|(p, l)| (p.values.clone(), *l)).collect()
    }

    /// Training view with coordinates transformed by `f` (e.g. unit-cube
    /// scaling).
    pub fn training_data_mapped(
        &self,
        mut f: impl FnMut(&[f64]) -> Vec<f64>,
    ) -> Vec<(Vec<f64>, Label)> {
        self.entries.iter().map(|(p, l)| (f(&p.values), *l)).collect()
    }

    /// Row ids labeled positive, ascending.
    pub fn positive_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, l)| l.is_positive())
            .map(|(p, _)| p.id.as_u64())
            .collect();
        ids.sort_unstable();
        ids
    }
}

/// The unlabeled cache `U`: a base uniform sample plus swappable regions.
///
/// UEI keeps "only one uncertain data region g* in the memory at any given
/// time" **by default** (§3.2) and "drop\[s\] any previously loaded data
/// regions from U" each iteration (Algorithm 2 line 15). The default is a
/// memory/recall trade-off, so the pool generalizes it: it retains up to
/// `region_capacity` recent regions (1 reproduces the paper exactly). The
/// uniform sample is tracked separately so region swaps never disturb it.
#[derive(Debug)]
pub struct UnlabeledPool {
    base: Vec<DataPoint>,
    regions: std::collections::VecDeque<Vec<DataPoint>>,
    region_capacity: usize,
    removed: HashMap<RowId, ()>,
}

impl Default for UnlabeledPool {
    fn default() -> Self {
        UnlabeledPool::from_sample(Vec::new())
    }
}

impl UnlabeledPool {
    /// Creates a pool from the uniform sample (Algorithm 2 line 12), with
    /// the paper's default of one resident region.
    pub fn from_sample(sample: Vec<DataPoint>) -> Self {
        UnlabeledPool::with_region_capacity(sample, 1)
    }

    /// Creates a pool keeping up to `region_capacity` recent regions
    /// resident (must be ≥ 1).
    pub fn with_region_capacity(sample: Vec<DataPoint>, region_capacity: usize) -> Self {
        UnlabeledPool {
            base: sample,
            regions: std::collections::VecDeque::new(),
            region_capacity: region_capacity.max(1),
            removed: HashMap::new(),
        }
    }

    /// Admits a freshly loaded region, evicting the oldest resident region
    /// beyond capacity (lines 15 & 20). Rows already labeled or otherwise
    /// removed are filtered out; rows already present in a resident region
    /// are dropped to keep candidates unique.
    pub fn swap_region(&mut self, region_rows: Vec<DataPoint>) {
        let resident: std::collections::HashSet<RowId> =
            self.regions.iter().flatten().map(|p| p.id).collect();
        let fresh: Vec<DataPoint> = region_rows
            .into_iter()
            .filter(|p| !self.removed.contains_key(&p.id) && !resident.contains(&p.id))
            .collect();
        self.regions.push_back(fresh);
        while self.regions.len() > self.region_capacity {
            self.regions.pop_front();
        }
    }

    /// Removes a row everywhere (a labeled example leaves `U`, line 24).
    /// The id stays blacklisted so a future region swap cannot re-admit it.
    pub fn remove(&mut self, id: RowId) {
        self.removed.insert(id, ());
        self.base.retain(|p| p.id != id);
        for region in &mut self.regions {
            region.retain(|p| p.id != id);
        }
    }

    /// Number of candidate points currently in the pool.
    pub fn len(&self) -> usize {
        self.base.len() + self.regions.iter().map(|r| r.len()).sum::<usize>()
    }

    /// Whether the pool has no candidates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of the uniform-sample part.
    pub fn base_len(&self) -> usize {
        self.base.len()
    }

    /// Total rows across resident regions.
    pub fn region_len(&self) -> usize {
        self.regions.iter().map(|r| r.len()).sum()
    }

    /// How many regions are currently resident.
    pub fn resident_regions(&self) -> usize {
        self.regions.len()
    }

    /// The configured region capacity.
    pub fn region_capacity(&self) -> usize {
        self.region_capacity
    }

    /// A snapshot of every candidate (base sample first, then regions from
    /// oldest to newest) for strategy selection.
    pub fn candidates(&self) -> Vec<DataPoint> {
        let mut all = Vec::with_capacity(self.len());
        all.extend(self.base.iter().cloned());
        for region in &self.regions {
            all.extend(region.iter().cloned());
        }
        all
    }

    /// The candidate at `idx` of the [`Self::candidates`] ordering.
    pub fn get(&self, idx: usize) -> Option<&DataPoint> {
        if idx < self.base.len() {
            return self.base.get(idx);
        }
        let mut rest = idx - self.base.len();
        for region in &self.regions {
            if rest < region.len() {
                return region.get(rest);
            }
            rest -= region.len();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(id: u64, v: f64) -> DataPoint {
        DataPoint::new(id, vec![v])
    }

    #[test]
    fn labeled_set_basics() {
        let mut l = LabeledSet::new();
        assert!(l.is_empty());
        assert!(!l.has_both_classes());
        l.add(p(1, 0.5), Label::Positive).unwrap();
        assert!(!l.has_both_classes());
        l.add(p(2, 0.1), Label::Negative).unwrap();
        assert!(l.has_both_classes());
        assert_eq!(l.len(), 2);
        assert_eq!(l.num_positive(), 1);
        assert!(l.contains(RowId(1)));
        assert_eq!(l.label_of(RowId(2)), Some(Label::Negative));
        assert_eq!(l.label_of(RowId(3)), None);
        assert_eq!(l.positive_ids(), vec![1]);
    }

    #[test]
    fn labeled_set_rejects_duplicates() {
        let mut l = LabeledSet::new();
        l.add(p(1, 0.5), Label::Positive).unwrap();
        assert!(l.add(p(1, 0.5), Label::Negative).is_err());
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn training_data_shapes() {
        let mut l = LabeledSet::new();
        l.add(p(1, 2.0), Label::Positive).unwrap();
        l.add(p(2, 4.0), Label::Negative).unwrap();
        let t = l.training_data();
        assert_eq!(t[0], (vec![2.0], Label::Positive));
        let mapped = l.training_data_mapped(|x| vec![x[0] / 2.0]);
        assert_eq!(mapped[0].0, vec![1.0]);
        assert_eq!(mapped[1].0, vec![2.0]);
    }

    #[test]
    fn pool_swap_and_remove() {
        let mut u = UnlabeledPool::from_sample(vec![p(0, 0.0), p(1, 0.1), p(2, 0.2)]);
        assert_eq!(u.len(), 3);
        u.swap_region(vec![p(10, 1.0), p(11, 1.1)]);
        assert_eq!(u.len(), 5);
        assert_eq!(u.base_len(), 3);
        assert_eq!(u.region_len(), 2);

        u.remove(RowId(1));
        u.remove(RowId(10));
        assert_eq!(u.len(), 3);

        // Swapping in a region containing a removed id must not re-admit it.
        u.swap_region(vec![p(10, 1.0), p(12, 1.2)]);
        assert_eq!(u.region_len(), 1);
        assert!(u.candidates().iter().all(|c| c.id != RowId(10)));
    }

    #[test]
    fn pool_candidates_order_and_get() {
        let mut u = UnlabeledPool::from_sample(vec![p(0, 0.0), p(1, 0.1)]);
        u.swap_region(vec![p(5, 0.5)]);
        let c = u.candidates();
        assert_eq!(c.len(), 3);
        assert_eq!(c[0].id, RowId(0));
        assert_eq!(c[2].id, RowId(5));
        assert_eq!(u.get(0).unwrap().id, RowId(0));
        assert_eq!(u.get(2).unwrap().id, RowId(5));
        assert!(u.get(3).is_none());
    }

    #[test]
    fn region_swap_replaces_not_accumulates() {
        let mut u = UnlabeledPool::from_sample(vec![]);
        u.swap_region(vec![p(1, 0.1), p(2, 0.2)]);
        assert_eq!(u.region_len(), 2);
        u.swap_region(vec![p(3, 0.3)]);
        assert_eq!(u.region_len(), 1, "old region dropped (Algorithm 2 line 15)");
        assert!(!u.is_empty());
    }

    #[test]
    fn multi_region_capacity_keeps_recent_regions() {
        let mut u = UnlabeledPool::with_region_capacity(vec![p(0, 0.0)], 2);
        assert_eq!(u.region_capacity(), 2);
        u.swap_region(vec![p(1, 0.1)]);
        u.swap_region(vec![p(2, 0.2)]);
        assert_eq!(u.resident_regions(), 2);
        assert_eq!(u.region_len(), 2);
        // Third region evicts the oldest (row 1).
        u.swap_region(vec![p(3, 0.3)]);
        assert_eq!(u.resident_regions(), 2);
        let ids: Vec<u64> = u.candidates().iter().map(|c| c.id.as_u64()).collect();
        assert_eq!(ids, vec![0, 2, 3]);
    }

    #[test]
    fn multi_region_deduplicates_overlapping_loads() {
        // Adjacent cells share no rows, but reloading the same cell while
        // an old copy is resident must not duplicate candidates.
        let mut u = UnlabeledPool::with_region_capacity(vec![], 3);
        u.swap_region(vec![p(1, 0.1), p(2, 0.2)]);
        u.swap_region(vec![p(2, 0.2), p(3, 0.3)]);
        let mut ids: Vec<u64> = u.candidates().iter().map(|c| c.id.as_u64()).collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3], "row 2 appears once");
    }

    #[test]
    fn multi_region_get_indexes_across_regions() {
        let mut u = UnlabeledPool::with_region_capacity(vec![p(0, 0.0)], 2);
        u.swap_region(vec![p(1, 0.1)]);
        u.swap_region(vec![p(2, 0.2), p(3, 0.3)]);
        assert_eq!(u.get(0).unwrap().id, RowId(0));
        assert_eq!(u.get(1).unwrap().id, RowId(1));
        assert_eq!(u.get(2).unwrap().id, RowId(2));
        assert_eq!(u.get(3).unwrap().id, RowId(3));
        assert!(u.get(4).is_none());
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let u = UnlabeledPool::with_region_capacity(vec![], 0);
        assert_eq!(u.region_capacity(), 1);
    }
}
