//! Batch scoring helpers shared by [`crate::model::Classifier`]
//! implementations.
//!
//! The per-iteration hot paths of UEI score *sets* of points — every
//! symbolic index point (Algorithm 2 line 17), the whole candidate pool
//! (line 21), and the full dataset at final retrieval (line 26) — yet the
//! estimator API is naturally per-point. Batch scoring closes that gap:
//!
//! - queries are fanned out across cores with rayon when the batch is
//!   large enough to amortize the fork/join overhead;
//! - each worker reuses per-query scratch (kd-tree traversal heaps,
//!   distance buffers), so even a single-threaded batch beats a loop of
//!   independent `predict_proba` calls;
//! - results are **element-wise identical** to the sequential loop: the
//!   batch is split into contiguous segments whose results are
//!   concatenated in order, and every specialized override performs the
//!   exact same floating-point operations per query as its scalar path.

use rayon::prelude::*;
use uei_types::PointMatrix;

/// Batches smaller than this are scored sequentially: on tiny inputs the
/// thread fan-out costs more than the scoring itself. The value is far
/// below the paper's default grid (5⁵ = 3125 index points) so real
/// rescoring passes parallelize, while per-cell pools often stay under it.
///
/// This is the *generic* cutoff, tuned for per-query work on the order of
/// a kd-tree traversal. Cheap models (a handful of flops per query) raise
/// their own cutoff via
/// [`crate::model::Classifier::parallel_batch_threshold`], because for
/// them the fork/join overhead dominates far past 256 queries — the
/// scoring benchmark showed GaussianNB at 0.57× and LinearSVM at 0.26×
/// the sequential loop when parallelized at 256 points.
pub const PARALLEL_THRESHOLD: usize = 256;

/// Whether a batch of `n` queries should be scored in parallel.
pub fn should_parallelize(n: usize) -> bool {
    should_parallelize_at(n, PARALLEL_THRESHOLD)
}

/// [`should_parallelize`] against an explicit per-model work-size cutoff.
pub fn should_parallelize_at(n: usize, threshold: usize) -> bool {
    n >= threshold && rayon::current_num_threads() > 1
}

/// Maps `op` over `xs`, in parallel when the batch is large enough.
///
/// `op` receives the query index and slice. Output order always matches
/// input order, and `op` is applied exactly once per element either way —
/// callers may rely on element-wise identical results across modes.
pub fn map_batch<R, F>(xs: &[&[f64]], op: F) -> Vec<R>
where
    R: Send,
    F: Fn(&[f64]) -> R + Send + Sync,
{
    map_batch_at(xs, PARALLEL_THRESHOLD, op)
}

/// [`map_batch`] with an explicit sequential-fallback threshold: the fan-out
/// only engages for batches of at least `threshold` queries. Values are
/// identical either way — the threshold trades thread overhead against
/// per-query cost, never results.
pub fn map_batch_at<R, F>(xs: &[&[f64]], threshold: usize, op: F) -> Vec<R>
where
    R: Send,
    F: Fn(&[f64]) -> R + Send + Sync,
{
    if should_parallelize_at(xs.len(), threshold) {
        xs.par_iter().map(|x| op(x)).collect()
    } else {
        xs.iter().map(|x| op(x)).collect()
    }
}

/// Maps `op` over the rows `rows` of a flat row-major [`PointMatrix`], in
/// parallel when the range is large enough — the matrix counterpart of
/// [`map_batch_at`] that never materializes a `Vec<&[f64]>` row-refs view.
///
/// `op` receives the *absolute* row index and the row slice. The range is
/// split into contiguous sub-ranges whose outputs are concatenated in row
/// order, so results are element-wise identical to the sequential loop at
/// any thread count (the same guarantee [`map_batch`] documents).
pub fn map_matrix_range_at<R, F>(
    points: &PointMatrix,
    rows: std::ops::Range<usize>,
    threshold: usize,
    op: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(usize, &[f64]) -> R + Send + Sync,
{
    assert!(rows.start <= rows.end && rows.end <= points.len(), "row range out of bounds");
    let n = rows.len();
    if !should_parallelize_at(n, threshold) {
        return rows.map(|i| op(i, points.row(i))).collect();
    }
    let dims = points.dims().max(1);
    let flat = points.as_flat();
    let per = n.div_ceil(rayon::current_num_threads()).max(1);
    let subranges: Vec<(usize, usize)> =
        (rows.start..rows.end).step_by(per).map(|lo| (lo, (lo + per).min(rows.end))).collect();
    let per_seg: Vec<Vec<R>> = subranges
        .into_par_iter()
        .map(|(lo, hi)| {
            flat[lo * dims..hi * dims]
                .chunks_exact(dims)
                .enumerate()
                .map(|(j, row)| op(lo + j, row))
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(n);
    for mut seg in per_seg {
        out.append(&mut seg);
    }
    out
}

/// Like [`map_batch`], but each worker carries mutable scratch state built
/// by `init` — the mechanism nearest-neighbour models use to reuse kd-tree
/// traversal buffers across the queries of one segment.
///
/// Sequentially a single scratch serves the whole batch; in parallel each
/// contiguous segment gets its own. Because scratch never influences the
/// produced values (only allocation reuse), results are identical across
/// thread counts.
pub fn map_batch_with<S, R, I, F>(xs: &[&[f64]], init: I, op: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, &[f64]) -> R + Send + Sync,
{
    map_batch_with_at(xs, PARALLEL_THRESHOLD, init, op)
}

/// [`map_batch_with`] with an explicit sequential-fallback threshold.
pub fn map_batch_with_at<S, R, I, F>(xs: &[&[f64]], threshold: usize, init: I, op: F) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Send + Sync,
    F: Fn(&mut S, &[f64]) -> R + Send + Sync,
{
    if should_parallelize_at(xs.len(), threshold) {
        let threads = rayon::current_num_threads();
        let chunk = xs.len().div_ceil(threads).max(1);
        let per_chunk: Vec<Vec<R>> = xs
            .par_chunks(chunk)
            .map(|seg| {
                let mut scratch = init();
                seg.iter().map(|x| op(&mut scratch, x)).collect()
            })
            .collect();
        let mut out = Vec::with_capacity(xs.len());
        for mut seg in per_chunk {
            out.append(&mut seg);
        }
        out
    } else {
        let mut scratch = init();
        xs.iter().map(|x| op(&mut scratch, x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_batch_preserves_order() {
        let data: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        let got = map_batch(&refs, |x| x[0] * 2.0);
        let want: Vec<f64> = (0..1000).map(|i| i as f64 * 2.0).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn map_batch_with_scratch_matches_plain() {
        let data: Vec<Vec<f64>> = (0..600).map(|i| vec![i as f64, 1.0]).collect();
        let refs: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        let with_scratch = map_batch_with(&refs, Vec::<f64>::new, |buf, x| {
            buf.clear();
            buf.extend_from_slice(x);
            buf.iter().sum::<f64>()
        });
        let plain: Vec<f64> = refs.iter().map(|x| x.iter().sum()).collect();
        assert_eq!(with_scratch, plain);
    }

    #[test]
    fn tiny_batches_stay_sequential() {
        assert!(!should_parallelize(PARALLEL_THRESHOLD - 1));
    }

    #[test]
    fn per_model_threshold_gates_fanout() {
        // A cheap model's raised cutoff keeps mid-size batches sequential
        // where the generic cutoff would have forked.
        assert!(!should_parallelize_at(1024, 8192));
        assert!(!should_parallelize_at(8191, 8192));
        // At or past its own cutoff the fan-out engages again (when a pool
        // exists at all).
        assert_eq!(should_parallelize_at(8192, 8192), rayon::current_num_threads() > 1);
    }

    #[test]
    fn matrix_range_map_matches_row_loop() {
        let rows: Vec<Vec<f64>> = (0..600).map(|i| vec![i as f64, 0.5]).collect();
        let m = PointMatrix::from_rows(&rows).unwrap();
        let want: Vec<f64> = (100..550).map(|i| i as f64 * 2.0 + 0.5).collect();
        for threshold in [1, 256, usize::MAX] {
            let got = map_matrix_range_at(&m, 100..550, threshold, |i, row| {
                assert_eq!(row[0], i as f64);
                row[0] * 2.0 + row[1]
            });
            assert_eq!(got, want, "threshold {threshold}");
        }
        // Empty ranges and empty matrices are fine.
        assert!(map_matrix_range_at(&m, 10..10, 1, |_, r| r[0]).is_empty());
        let empty = PointMatrix::new(0);
        assert!(map_matrix_range_at(&empty, 0..0, 1, |_, r| r.len()).is_empty());
    }

    #[test]
    fn threshold_variants_match_defaults_elementwise() {
        let data: Vec<Vec<f64>> = (0..700).map(|i| vec![i as f64]).collect();
        let refs: Vec<&[f64]> = data.iter().map(|v| v.as_slice()).collect();
        let default_path = map_batch(&refs, |x| x[0].sin());
        for threshold in [1, 256, 701, usize::MAX] {
            assert_eq!(map_batch_at(&refs, threshold, |x| x[0].sin()), default_path);
            let with_scratch = map_batch_with_at(&refs, threshold, || 0.0f64, |_, x| x[0].sin());
            assert_eq!(with_scratch, default_path);
        }
    }
}
