//! The classifier abstraction used by uncertainty sampling.
//!
//! Uncertainty sampling "can be used with any probability-based predictive
//! model (e.g., Naive Bayes, SVM, etc.)" (paper §2.1); UEI likewise works
//! "in conjunction with any probabilistic-based classifiers" (§3). The
//! [`Classifier`] trait captures exactly what both need: a posterior
//! `P(positive | x)` for binary labels.

use uei_types::{Label, PointMatrix, Result, UeiError};

use crate::delta::{ModelDelta, ScoredBatch};

/// A trained binary probabilistic classifier.
pub trait Classifier: Send + Sync {
    /// Posterior probability that `x` is [`Label::Positive`], in `[0, 1]`.
    fn predict_proba(&self, x: &[f64]) -> f64;

    /// Posterior probabilities for a whole batch of queries, in input
    /// order.
    ///
    /// The contract is strict: `predict_proba_batch(xs)[i]` must be
    /// bit-identical to `predict_proba(xs[i])` for every implementation,
    /// so callers can switch between the scalar and batch paths (or
    /// between thread counts) without perturbing selection order. The
    /// default implementation fans the scalar calls out across cores for
    /// batches of at least [`Self::parallel_batch_threshold`] queries (see
    /// [`crate::batch`]); models override it when they can amortize work
    /// across queries (shared kd-tree traversal scratch, one member pass
    /// per committee).
    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        crate::batch::map_batch_at(xs, self.parallel_batch_threshold(), |x| self.predict_proba(x))
    }

    /// [`Self::predict_proba_batch`] plus per-query influence radii, when
    /// the model can bound its future updates spatially.
    ///
    /// `probs` must be bit-identical to `predict_proba_batch(xs)`. The
    /// kNN-family estimators return each query's squared k-th-neighbour
    /// distance as its radius — captured during the very same tree
    /// traversal that scored the query, so tracking costs nothing extra —
    /// while globally updating models return `radii2: None`. Callers hand
    /// the radii back verbatim to [`Self::model_delta`]; they are in the
    /// model's own input space and opaque outside it.
    fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> ScoredBatch {
        ScoredBatch { probs: self.predict_proba_batch(xs), radii2: None }
    }

    /// Which of `points`'s cached scores this model may score differently
    /// than the predecessor model it extends by the `added` training
    /// examples.
    ///
    /// `radii2` are the influence radii the *previous* scoring pass
    /// captured via [`Self::predict_proba_batch_tracked`] (same length and
    /// order as `points`); `margin ≥ 0` inflates each influence ball by
    /// `1 + margin` as a safety factor. The contract: a point reported
    /// clean must produce a bit-identical posterior under `self`. The
    /// default is the conservative [`ModelDelta::Global`] — correct for
    /// every model, incremental for none; the kNN family overrides it with
    /// the strict influence-ball test of
    /// [`crate::delta::knn_influence_delta`].
    fn model_delta(
        &self,
        _points: &[&[f64]],
        _radii2: &[f64],
        _added: &[&[f64]],
        _margin: f64,
    ) -> ModelDelta {
        ModelDelta::Global
    }

    /// [`Self::model_delta`] over a flat row-major point matrix — the form
    /// the index-point rescoring path uses, so the hot loop never
    /// materializes a `Vec<Vec<f64>>`.
    ///
    /// Must return the exact same delta as
    /// `self.model_delta(&points.row_refs(), …)` — the default does
    /// literally that, and the kNN family overrides it with a blocked sweep
    /// over the contiguous storage
    /// ([`crate::delta::knn_influence_delta_flat`]).
    fn model_delta_matrix(
        &self,
        points: &PointMatrix,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        let refs = points.row_refs();
        self.model_delta(&refs, radii2, added, margin)
    }

    /// [`Self::model_delta_matrix`] restricted to the row range `rows` —
    /// the shard-local form the partitioned index-point plane calls once
    /// per shard, in parallel, so each new example's influence ball is
    /// mapped onto exactly the shards it intersects.
    ///
    /// `radii2` holds the radii of the range only (`radii2.len() ==
    /// rows.len()`) and the returned mask covers the range in row order.
    /// The contract: for any partition of `0..points.len()` into ranges,
    /// the concatenation of the range masks must equal
    /// `self.model_delta_matrix(points, …)` — dirtiness is a per-point
    /// predicate and must not depend on where shard boundaries fall. The
    /// default materializes the range's row-refs view and delegates to
    /// [`Self::model_delta`]; the kNN family overrides it with the blocked
    /// [`crate::delta::knn_influence_delta_flat_range`] sweep.
    fn model_delta_matrix_range(
        &self,
        points: &PointMatrix,
        rows: std::ops::Range<usize>,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        if rows.start > rows.end || rows.end > points.len() {
            return ModelDelta::Global;
        }
        let refs: Vec<&[f64]> = rows.map(|i| points.row(i)).collect();
        self.model_delta(&refs, radii2, added, margin)
    }

    /// The image of `x` in the model's *influence space* — the space its
    /// reported influence radii ([`ScoredBatch::radii2`]) measure
    /// distances in — or `None` when the model has no spatial locality
    /// structure or cannot map this input.
    ///
    /// The contract mirrors [`Self::model_delta`]: whenever a query `p`
    /// and an added example `a` both map to `Some` position, and the
    /// squared Euclidean distance between those positions is at least
    /// `r2 * (1 + margin)²` for the finite radius `r2` that
    /// [`Self::predict_proba_batch_tracked`] reported for `p`, the delta
    /// must report `p` clean with respect to `a`. Callers use this for
    /// conservative geometric pre-filtering (the sharded index plane skips
    /// whole shards that no inflated influence ball can reach); returning
    /// `None` merely disables that pruning, so the default is always
    /// sound. Implementations must return `None` for inputs the delta
    /// path would refuse (wrong dimensionality, untransformable rows)
    /// rather than guess.
    fn influence_position(&self, _x: &[f64]) -> Option<Vec<f64>> {
        None
    }

    /// Number of training examples this model was fitted on, in fit order,
    /// when the model can report it.
    ///
    /// Incremental rescoring uses this to recover *which* examples a
    /// retrained model gained: the exploration loop always retrains on the
    /// full labeled set, so the labeled entries between the previous and
    /// current training lengths are exactly the `added` influence sources
    /// for [`Self::model_delta`]. Models that cannot report a training
    /// size return `None`, and callers must fall back to a full rescore.
    fn training_len(&self) -> Option<usize> {
        None
    }

    /// Batch size below which this model's batch scoring stays sequential.
    ///
    /// The generic default ([`crate::batch::PARALLEL_THRESHOLD`]) is tuned
    /// for kd-tree-traversal-sized per-query work; models whose per-query
    /// cost is a handful of flops (Naive Bayes, a linear SVM) raise it,
    /// because for them the rayon fork/join overhead exceeds the scoring
    /// until batches are far larger. Thresholds affect scheduling only —
    /// results stay bit-identical at every batch size.
    fn parallel_batch_threshold(&self) -> usize {
        crate::batch::PARALLEL_THRESHOLD
    }

    /// Hard prediction at the 0.5 threshold.
    fn predict(&self, x: &[f64]) -> Label {
        Label::from_bool(self.predict_proba(x) >= 0.5)
    }

    /// Least-confidence uncertainty `u(x) = 1 − P(ŷ | x)` (paper Eq. 1).
    ///
    /// For binary classification this is `1 − max(p, 1−p)`, maximal (0.5)
    /// at `p = 0.5` — "the most uncertain example x is the one which can be
    /// assigned to either class label with probability 0.5" (§2.1).
    /// Delegates to [`crate::strategy::UncertaintyMeasure::LeastConfidence`]
    /// so the formula lives in exactly one place.
    fn uncertainty(&self, x: &[f64]) -> f64 {
        crate::strategy::UncertaintyMeasure::LeastConfidence.score(self.predict_proba(x))
    }

    /// Number of input dimensions the model expects.
    fn dims(&self) -> usize;
}

impl<C: Classifier + ?Sized> Classifier for Box<C> {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        (**self).predict_proba(x)
    }
    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        (**self).predict_proba_batch(xs)
    }
    fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> ScoredBatch {
        (**self).predict_proba_batch_tracked(xs)
    }
    fn model_delta(
        &self,
        points: &[&[f64]],
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        (**self).model_delta(points, radii2, added, margin)
    }
    fn model_delta_matrix(
        &self,
        points: &PointMatrix,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        (**self).model_delta_matrix(points, radii2, added, margin)
    }
    fn model_delta_matrix_range(
        &self,
        points: &PointMatrix,
        rows: std::ops::Range<usize>,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        (**self).model_delta_matrix_range(points, rows, radii2, added, margin)
    }
    fn influence_position(&self, x: &[f64]) -> Option<Vec<f64>> {
        (**self).influence_position(x)
    }
    fn training_len(&self) -> Option<usize> {
        (**self).training_len()
    }
    fn parallel_batch_threshold(&self) -> usize {
        (**self).parallel_batch_threshold()
    }
    fn predict(&self, x: &[f64]) -> Label {
        (**self).predict(x)
    }
    fn uncertainty(&self, x: &[f64]) -> f64 {
        (**self).uncertainty(x)
    }
    fn dims(&self) -> usize {
        (**self).dims()
    }
}

/// Which probabilistic estimator to train — the tunable "Uncertainty
/// Estimator" row of the paper's Table 1 (DWKNN in the evaluation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// Dual weighted kNN (Gou et al. 2012) — the paper's choice.
    Dwknn {
        /// Neighbourhood size.
        k: usize,
    },
    /// Plain majority-vote kNN.
    Knn {
        /// Neighbourhood size.
        k: usize,
    },
    /// Gaussian Naive Bayes.
    NaiveBayes,
    /// Linear SVM (Pegasos) with Platt-calibrated probabilities.
    LinearSvm {
        /// Number of SGD epochs.
        epochs: usize,
        /// Regularization strength λ.
        lambda: f64,
    },
}

impl Default for EstimatorKind {
    fn default() -> Self {
        // Table 1: DWKNN; k = 5 is the usual small-neighbourhood default.
        EstimatorKind::Dwknn { k: 5 }
    }
}

impl EstimatorKind {
    /// Trains a classifier of this kind on `(point, label)` examples.
    ///
    /// Requires at least one example of each class — the exploration loop
    /// keeps sampling initial examples "until the set of initial examples
    /// contains at least one positive example and one negative example"
    /// (paper §3.2), so training on a single-class set is a protocol bug.
    pub fn train(&self, examples: &[(Vec<f64>, Label)]) -> Result<Box<dyn Classifier>> {
        check_two_classes(examples)?;
        match *self {
            EstimatorKind::Dwknn { k } => Ok(Box::new(crate::dwknn::Dwknn::fit(k, examples)?)),
            EstimatorKind::Knn { k } => Ok(Box::new(crate::knn::Knn::fit(k, examples)?)),
            EstimatorKind::NaiveBayes => {
                Ok(Box::new(crate::naive_bayes::GaussianNb::fit(examples)?))
            }
            EstimatorKind::LinearSvm { epochs, lambda } => {
                Ok(Box::new(crate::svm::LinearSvm::fit(examples, epochs, lambda, 0x5EED)?))
            }
        }
    }

    /// Short human-readable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            EstimatorKind::Dwknn { .. } => "DWKNN",
            EstimatorKind::Knn { .. } => "KNN",
            EstimatorKind::NaiveBayes => "GaussianNB",
            EstimatorKind::LinearSvm { .. } => "LinearSVM",
        }
    }
}

/// Validates that a training set is non-empty, dimensionally consistent,
/// and contains both classes.
pub(crate) fn check_two_classes(examples: &[(Vec<f64>, Label)]) -> Result<()> {
    let first = examples
        .first()
        .ok_or_else(|| UeiError::invalid_state("cannot train on an empty labeled set"))?;
    let dims = first.0.len();
    let mut pos = false;
    let mut neg = false;
    for (x, label) in examples {
        if x.len() != dims {
            return Err(UeiError::DimensionMismatch { expected: dims, actual: x.len() });
        }
        match label {
            Label::Positive => pos = true,
            Label::Negative => neg = true,
        }
    }
    if !pos || !neg {
        return Err(UeiError::invalid_state(
            "training requires at least one positive and one negative example",
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Constant(f64);
    impl Classifier for Constant {
        fn predict_proba(&self, _x: &[f64]) -> f64 {
            self.0
        }
        fn dims(&self) -> usize {
            1
        }
    }

    #[test]
    fn default_predict_threshold() {
        assert_eq!(Constant(0.7).predict(&[0.0]), Label::Positive);
        assert_eq!(Constant(0.5).predict(&[0.0]), Label::Positive);
        assert_eq!(Constant(0.49).predict(&[0.0]), Label::Negative);
    }

    #[test]
    fn least_confidence_uncertainty() {
        assert!((Constant(0.5).uncertainty(&[0.0]) - 0.5).abs() < 1e-12);
        assert!((Constant(0.9).uncertainty(&[0.0]) - 0.1).abs() < 1e-12);
        assert!((Constant(0.1).uncertainty(&[0.0]) - 0.1).abs() < 1e-12);
        assert_eq!(Constant(1.0).uncertainty(&[0.0]), 0.0);
    }

    #[test]
    fn boxed_classifier_delegates() {
        let boxed: Box<dyn Classifier> = Box::new(Constant(0.8));
        assert_eq!(boxed.predict_proba(&[0.0]), 0.8);
        assert_eq!(boxed.predict(&[0.0]), Label::Positive);
        assert_eq!(boxed.dims(), 1);
        assert_eq!(boxed.parallel_batch_threshold(), crate::batch::PARALLEL_THRESHOLD);
    }

    #[test]
    fn default_delta_contract_is_conservative() {
        let model = Constant(0.3);
        let x = [0.0f64];
        let xs: Vec<&[f64]> = vec![&x];
        let tracked = model.predict_proba_batch_tracked(&xs);
        assert_eq!(tracked.probs, vec![0.3]);
        assert!(tracked.radii2.is_none(), "a global model reports no influence radii");
        // Without radii the delta must be invalidate-all, no matter what
        // was (or wasn't) added.
        assert_eq!(model.model_delta(&xs, &[], &[], 0.0), crate::delta::ModelDelta::Global);
        let boxed: Box<dyn Classifier> = Box::new(Constant(0.3));
        assert_eq!(boxed.model_delta(&xs, &[], &xs, 0.5), crate::delta::ModelDelta::Global);
        assert!(boxed.predict_proba_batch_tracked(&xs).radii2.is_none());
        // No spatial structure, no influence space: geometric prefiltering
        // stays disabled by default.
        assert!(boxed.influence_position(&x).is_none());
    }

    fn xy(examples: &[(f64, f64, Label)]) -> Vec<(Vec<f64>, Label)> {
        examples.iter().map(|&(a, b, l)| (vec![a, b], l)).collect()
    }

    #[test]
    fn train_rejects_degenerate_sets() {
        let kind = EstimatorKind::default();
        assert!(kind.train(&[]).is_err());
        let single = xy(&[(0.0, 0.0, Label::Positive), (1.0, 1.0, Label::Positive)]);
        assert!(kind.train(&single).is_err());
        let ragged = vec![(vec![0.0, 0.0], Label::Positive), (vec![1.0], Label::Negative)];
        assert!(kind.train(&ragged).is_err());
    }

    #[test]
    fn every_kind_trains_and_separates() {
        // A linearly separable cloud: positives near (1, 1), negatives near (0, 0).
        let mut examples = Vec::new();
        for i in 0..10 {
            let t = i as f64 / 10.0 * 0.2;
            examples.push((vec![1.0 - t, 1.0 + t], Label::Positive));
            examples.push((vec![0.0 + t, 0.0 - t], Label::Negative));
        }
        for kind in [
            EstimatorKind::Dwknn { k: 3 },
            EstimatorKind::Knn { k: 3 },
            EstimatorKind::NaiveBayes,
            EstimatorKind::LinearSvm { epochs: 50, lambda: 0.01 },
        ] {
            let model = kind.train(&examples).unwrap();
            assert_eq!(model.dims(), 2, "{}", kind.name());
            assert_eq!(model.predict(&[1.0, 1.0]), Label::Positive, "{}", kind.name());
            assert_eq!(model.predict(&[0.0, 0.0]), Label::Negative, "{}", kind.name());
            let p = model.predict_proba(&[0.5, 0.5]);
            assert!((0.0..=1.0).contains(&p), "{}: {p}", kind.name());
        }
    }

    #[test]
    fn names() {
        assert_eq!(EstimatorKind::default().name(), "DWKNN");
        assert_eq!(EstimatorKind::NaiveBayes.name(), "GaussianNB");
    }
}
