//! The model-delta contract behind incremental index-point rescoring.
//!
//! The exploration loop retrains its model after every label, yet a label
//! is one point: for the nearest-neighbour family (the paper's DWKNN,
//! Table 1) the posterior of a query `q` can only change when the new
//! training example *enters q's k-nearest-neighbour set*, i.e. when
//!
//! ```text
//! dist(q, x_new) < r_k(q)
//! ```
//!
//! where `r_k(q)` is the distance from `q` to its k-th nearest neighbour
//! under the previous model. Everything farther away is provably
//! untouched — its neighbour set, tie-breaks, and summation order are
//! unchanged, so its posterior is *bit-identical*. A caller that caches
//! each query's previous score plus its `r_k` radius can therefore rescore
//! only the queries inside the influence ball of the newly added examples
//! and keep every other score verbatim.
//!
//! Models whose updates are global (Naive Bayes class statistics, SVM
//! weights, a committee of bootstrap resamples) cannot bound their change
//! spatially; they report [`ModelDelta::Global`] — the conservative
//! invalidate-all default — and the caller falls back to a full rescore.
//!
//! Two soundness details the kNN-family implementations rely on:
//!
//! - **Exact ties.** The kd-tree resolves equal distances toward the lower
//!   build index, and retraining appends new examples *after* all previous
//!   ones (the labeled set is append-only), so at exact distance equality
//!   the new example always *loses* the tie. The strict `<` test above is
//!   therefore exactly the "neighbour set changed" predicate, not an
//!   approximation of it.
//! - **Unsaturated neighbourhoods.** While fewer than `k` training
//!   examples exist, every new example joins every query's neighbour set;
//!   such queries carry an infinite radius and are always dirty.

/// A scored batch with optional per-query influence radii.
///
/// Produced by
/// [`Classifier::predict_proba_batch_tracked`](crate::model::Classifier::predict_proba_batch_tracked).
/// `probs[i]` is bit-identical to `predict_proba(xs[i])`; `radii2`, when
/// present, holds each query's *squared* k-th-neighbour distance in the
/// model's own input space. Radii are opaque to callers: they are stored
/// verbatim and handed back to
/// [`Classifier::model_delta`](crate::model::Classifier::model_delta) on
/// the next iteration, never interpreted.
#[derive(Debug, Clone)]
pub struct ScoredBatch {
    /// Posterior probabilities, in input order.
    pub probs: Vec<f64>,
    /// Squared influence radii per query, when the model can bound its
    /// updates spatially (`None` for globally updating models).
    pub radii2: Option<Vec<f64>>,
}

/// Which cached scores a model update may have changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelDelta {
    /// The update is (or must be assumed) global: every cached score may
    /// have changed. The conservative default.
    Global,
    /// `dirty[i]` marks whether query `i`'s score may have changed; clean
    /// entries are guaranteed bit-identical under the new model.
    Dirty(Vec<bool>),
}

impl ModelDelta {
    /// Number of dirty entries, or `points` for a global delta.
    pub fn dirty_count(&self, points: usize) -> usize {
        match self {
            ModelDelta::Global => points,
            ModelDelta::Dirty(mask) => mask.iter().filter(|&&d| d).count(),
        }
    }
}

use uei_types::{point::squared_distances_block, PointMatrix};

/// Squared Euclidean distance over the shared prefix of two slices.
/// Slices of equal length (the only case the delta computations feed it)
/// get the true squared distance.
#[inline]
pub fn dist2(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..a.len().min(b.len()) {
        let d = a[i] - b[i];
        acc += d * d;
    }
    acc
}

/// The shared kNN-family delta: `dirty[i]` iff some added example falls
/// strictly inside query `i`'s (margin-inflated) influence ball, or the
/// query's radius is unknown/unbounded.
///
/// `margin ≥ 0` inflates every radius by `(1 + margin)` — a safety factor
/// that can only *add* dirty points, never hide one, so any margin keeps
/// the delta sound. Dimension disagreements between `points` and `added`
/// degrade to [`ModelDelta::Global`] rather than guess.
pub fn knn_influence_delta(
    points: &[&[f64]],
    radii2: &[f64],
    added: &[&[f64]],
    margin: f64,
    parallel_threshold: usize,
) -> ModelDelta {
    if radii2.len() != points.len() || !(margin >= 0.0) || !margin.is_finite() {
        return ModelDelta::Global;
    }
    let dims = points.first().map_or(0, |p| p.len());
    if points.iter().chain(added).any(|p| p.len() != dims) {
        return ModelDelta::Global;
    }
    let inflate = (1.0 + margin) * (1.0 + margin);
    let compute = |i: usize| -> bool {
        let r2 = radii2[i];
        if !r2.is_finite() {
            return true;
        }
        let bound = r2 * inflate;
        added.iter().any(|a| dist2(points[i], a) < bound)
    };
    let dirty: Vec<bool> = if crate::batch::should_parallelize_at(points.len(), parallel_threshold)
    {
        use rayon::prelude::*;
        (0..points.len()).into_par_iter().map(compute).collect()
    } else {
        (0..points.len()).map(compute).collect()
    };
    ModelDelta::Dirty(dirty)
}

/// Rows per work unit in [`knn_influence_delta_flat`]: big enough that the
/// blocked distance kernel amortizes its setup, small enough to spread
/// across cores.
const FLAT_DELTA_BLOCK: usize = 1024;

/// [`knn_influence_delta`] over the flat row-major layout: the influence
/// test runs as blocked distance sweeps over contiguous storage (one
/// linear pass per added example) instead of a pointer chase per point.
///
/// The dirty mask is *identical* to the slice-of-refs variant: each
/// squared distance is accumulated in the same ascending-dimension order,
/// and the strict `<` comparison against the inflated radius is the same
/// predicate — only the iteration order over (point, added) pairs differs,
/// and a boolean OR is order-independent.
pub fn knn_influence_delta_flat(
    points: &PointMatrix,
    radii2: &[f64],
    added: &[&[f64]],
    margin: f64,
    parallel_threshold: usize,
) -> ModelDelta {
    knn_influence_delta_flat_range(
        points,
        0..points.len(),
        radii2,
        added,
        margin,
        parallel_threshold,
    )
}

/// [`knn_influence_delta_flat`] restricted to the row range `rows` of the
/// matrix — the shard-local form the partitioned index-point plane uses to
/// map each new example's influence ball onto the shards it intersects.
///
/// `radii2` holds the radii of the *range* only (`radii2.len() ==
/// rows.len()`), and the returned mask covers the range in row order. The
/// dirty decision is a per-point predicate, so for any partition of
/// `0..points.len()` into ranges the concatenated range masks equal the
/// full-matrix mask bit for bit — block boundaries only change iteration
/// order of a boolean OR.
pub fn knn_influence_delta_flat_range(
    points: &PointMatrix,
    rows: std::ops::Range<usize>,
    radii2: &[f64],
    added: &[&[f64]],
    margin: f64,
    parallel_threshold: usize,
) -> ModelDelta {
    if rows.start > rows.end || rows.end > points.len() {
        return ModelDelta::Global;
    }
    let n = rows.len();
    if radii2.len() != n || !(margin >= 0.0) || !margin.is_finite() {
        return ModelDelta::Global;
    }
    let dims = points.dims();
    if added.iter().any(|a| a.len() != dims) {
        return ModelDelta::Global;
    }
    let inflate = (1.0 + margin) * (1.0 + margin);
    let flat = points.as_flat();
    let base = rows.start;
    // `lo`/`hi` are offsets within the range; the flat buffer is addressed
    // at `base + offset`.
    let compute_range = |lo: usize, hi: usize| -> Vec<bool> {
        let mut dirty: Vec<bool> = radii2[lo..hi].iter().map(|r| !r.is_finite()).collect();
        let mut dists = Vec::with_capacity(hi - lo);
        for a in added {
            dists.clear();
            let block = &flat[(base + lo) * dims..(base + hi) * dims];
            if squared_distances_block(a, block, dims, &mut dists).is_err() {
                // Unreachable after the dims check above; stay conservative.
                dirty.iter_mut().for_each(|d| *d = true);
                return dirty;
            }
            for (j, &d2) in dists.iter().enumerate() {
                let r2 = radii2[lo + j];
                if !dirty[j] && r2.is_finite() && d2 < r2 * inflate {
                    dirty[j] = true;
                }
            }
        }
        dirty
    };
    let ranges: Vec<(usize, usize)> =
        (0..n).step_by(FLAT_DELTA_BLOCK).map(|lo| (lo, (lo + FLAT_DELTA_BLOCK).min(n))).collect();
    let blocks: Vec<Vec<bool>> = if crate::batch::should_parallelize_at(n, parallel_threshold) {
        use rayon::prelude::*;
        ranges.par_iter().map(|&(lo, hi)| compute_range(lo, hi)).collect()
    } else {
        ranges.iter().map(|&(lo, hi)| compute_range(lo, hi)).collect()
    };
    let mut dirty = Vec::with_capacity(n);
    for block in blocks {
        dirty.extend(block);
    }
    ModelDelta::Dirty(dirty)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dist2_matches_euclidean() {
        assert_eq!(dist2(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(dist2(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn delta_marks_only_points_inside_influence_balls() {
        let points: Vec<Vec<f64>> = vec![vec![0.0, 0.0], vec![10.0, 0.0], vec![0.0, 10.0]];
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let radii2 = [4.0, 4.0, 150.0]; // last radius covers the new point
        let added = [vec![1.0, 0.0]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        let delta = knn_influence_delta(&refs, &radii2, &added_refs, 0.0, usize::MAX);
        assert_eq!(delta, ModelDelta::Dirty(vec![true, false, true]));
        assert_eq!(delta.dirty_count(3), 2);
    }

    #[test]
    fn boundary_distance_is_clean_under_strict_comparison() {
        // dist² == radius² exactly: the new example loses the kd-tree tie
        // (it has the highest build index), so the point must stay clean.
        let points: Vec<Vec<f64>> = vec![vec![0.0]];
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let added = [vec![2.0]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        let delta = knn_influence_delta(&refs, &[4.0], &added_refs, 0.0, usize::MAX);
        assert_eq!(delta, ModelDelta::Dirty(vec![false]));
        // A margin inflates the ball and flips it dirty — margins only add.
        let delta = knn_influence_delta(&refs, &[4.0], &added_refs, 0.1, usize::MAX);
        assert_eq!(delta, ModelDelta::Dirty(vec![true]));
    }

    #[test]
    fn infinite_radius_is_always_dirty() {
        let points: Vec<Vec<f64>> = vec![vec![0.0]];
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let added = [vec![1e9]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        let delta = knn_influence_delta(&refs, &[f64::INFINITY], &added_refs, 0.0, usize::MAX);
        assert_eq!(delta, ModelDelta::Dirty(vec![true]));
    }

    #[test]
    fn degenerate_inputs_fall_back_to_global() {
        let points: Vec<Vec<f64>> = vec![vec![0.0, 0.0]];
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let ragged = [vec![1.0]];
        let ragged_refs: Vec<&[f64]> = ragged.iter().map(|p| p.as_slice()).collect();
        // Radii length mismatch.
        assert_eq!(knn_influence_delta(&refs, &[], &ragged_refs, 0.0, 256), ModelDelta::Global);
        // Added point of the wrong dimensionality.
        assert_eq!(knn_influence_delta(&refs, &[1.0], &ragged_refs, 0.0, 256), ModelDelta::Global);
        // Invalid margins.
        let ok = [vec![1.0, 1.0]];
        let ok_refs: Vec<&[f64]> = ok.iter().map(|p| p.as_slice()).collect();
        assert_eq!(knn_influence_delta(&refs, &[1.0], &ok_refs, -0.5, 256), ModelDelta::Global);
        assert_eq!(knn_influence_delta(&refs, &[1.0], &ok_refs, f64::NAN, 256), ModelDelta::Global);
    }

    #[test]
    fn no_added_points_means_all_clean() {
        let points: Vec<Vec<f64>> = vec![vec![0.0], vec![5.0]];
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let delta = knn_influence_delta(&refs, &[1.0, 1.0], &[], 0.0, 256);
        assert_eq!(delta, ModelDelta::Dirty(vec![false, false]));
    }

    #[test]
    fn flat_delta_matches_ref_delta() {
        use uei_types::Rng;
        let mut rng = Rng::new(0xD17A);
        // Enough points to span multiple FLAT_DELTA_BLOCK work units.
        let n = 2 * super::FLAT_DELTA_BLOCK + 37;
        let mut points = Vec::with_capacity(n);
        let mut radii2 = Vec::with_capacity(n);
        for i in 0..n {
            points.push(vec![rng.range_f64(-4.0, 4.0), rng.range_f64(-4.0, 4.0)]);
            radii2.push(if i % 97 == 0 { f64::INFINITY } else { rng.range_f64(0.01, 2.0) });
        }
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let matrix = PointMatrix::from_rows(&points).unwrap();
        let added = [vec![0.5, -0.5], vec![-3.0, 3.0]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        for margin in [0.0, 0.25] {
            let want = knn_influence_delta(&refs, &radii2, &added_refs, margin, usize::MAX);
            // Exercise both the sequential and the parallel flat path.
            for threshold in [usize::MAX, 1] {
                let got =
                    knn_influence_delta_flat(&matrix, &radii2, &added_refs, margin, threshold);
                assert_eq!(got, want, "margin {margin}, threshold {threshold}");
            }
        }
        // Degenerate inputs degrade to Global exactly like the ref variant.
        let bad = [vec![1.0]];
        let bad_refs: Vec<&[f64]> = bad.iter().map(|p| p.as_slice()).collect();
        assert_eq!(
            knn_influence_delta_flat(&matrix, &radii2, &bad_refs, 0.0, 256),
            ModelDelta::Global
        );
        assert_eq!(
            knn_influence_delta_flat(&matrix, &radii2[1..], &added_refs, 0.0, 256),
            ModelDelta::Global
        );
        assert_eq!(
            knn_influence_delta_flat(&matrix, &radii2, &added_refs, f64::NAN, 256),
            ModelDelta::Global
        );
    }

    #[test]
    fn range_masks_partition_the_full_mask() {
        use uei_types::Rng;
        let mut rng = Rng::new(0x5A4D);
        let n = super::FLAT_DELTA_BLOCK + 513;
        let mut points = Vec::with_capacity(n);
        let mut radii2 = Vec::with_capacity(n);
        for i in 0..n {
            points.push(vec![rng.range_f64(-4.0, 4.0), rng.range_f64(-4.0, 4.0)]);
            radii2.push(if i % 89 == 0 { f64::INFINITY } else { rng.range_f64(0.01, 2.0) });
        }
        let matrix = PointMatrix::from_rows(&points).unwrap();
        let added = [vec![0.25, -0.75], vec![2.0, 2.0]];
        let added_refs: Vec<&[f64]> = added.iter().map(|p| p.as_slice()).collect();
        let ModelDelta::Dirty(want) =
            knn_influence_delta_flat(&matrix, &radii2, &added_refs, 0.1, usize::MAX)
        else {
            panic!("flat delta must prune");
        };
        // Unaligned partitions (nothing divides FLAT_DELTA_BLOCK) must
        // reassemble the exact full mask, sequentially and in parallel.
        for cuts in [vec![0, n], vec![0, 7, n], vec![0, 300, 301, 1500, n]] {
            for threshold in [usize::MAX, 1] {
                let mut got = Vec::with_capacity(n);
                for w in cuts.windows(2) {
                    let (lo, hi) = (w[0], w[1]);
                    match knn_influence_delta_flat_range(
                        &matrix,
                        lo..hi,
                        &radii2[lo..hi],
                        &added_refs,
                        0.1,
                        threshold,
                    ) {
                        ModelDelta::Dirty(mask) => got.extend(mask),
                        ModelDelta::Global => panic!("range {lo}..{hi} degraded to Global"),
                    }
                }
                assert_eq!(got, want, "cuts {cuts:?}, threshold {threshold}");
            }
        }
        // Degenerate ranges degrade to Global like every other bad input.
        #[allow(clippy::reversed_empty_ranges)]
        let reversed = 5..3;
        assert_eq!(
            knn_influence_delta_flat_range(&matrix, reversed, &[], &added_refs, 0.0, 256),
            ModelDelta::Global
        );
        assert_eq!(
            knn_influence_delta_flat_range(&matrix, 0..n + 1, &radii2, &added_refs, 0.0, 256),
            ModelDelta::Global
        );
        assert_eq!(
            knn_influence_delta_flat_range(&matrix, 0..4, &radii2[..3], &added_refs, 0.0, 256),
            ModelDelta::Global
        );
    }
}
