//! Plain k-nearest-neighbour classifier (majority vote / inverse-distance).
//!
//! Serves as the baseline DWKNN is compared against in the ablation
//! benches; the probability is the (optionally weighted) share of positive
//! neighbours.

use uei_types::{Label, PointMatrix, Result, UeiError};

use crate::delta::{knn_influence_delta, knn_influence_delta_flat, ModelDelta, ScoredBatch};
use crate::kdtree::{KdTree, NearestScratch};
use crate::model::{check_two_classes, Classifier};

/// Neighbour weighting for [`Knn`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnnWeighting {
    /// Every neighbour counts 1.
    Uniform,
    /// Neighbours count `1 / (d + ε)`.
    InverseDistance,
}

/// A trained kNN classifier.
#[derive(Debug)]
pub struct Knn {
    k: usize,
    weighting: KnnWeighting,
    tree: KdTree,
    labels: Vec<Label>,
    dims: usize,
}

impl Knn {
    /// Fits a uniform-vote kNN.
    pub fn fit(k: usize, examples: &[(Vec<f64>, Label)]) -> Result<Knn> {
        Knn::fit_weighted(k, KnnWeighting::Uniform, examples)
    }

    /// Fits a kNN with the given weighting.
    pub fn fit_weighted(
        k: usize,
        weighting: KnnWeighting,
        examples: &[(Vec<f64>, Label)],
    ) -> Result<Knn> {
        if k == 0 {
            return Err(UeiError::invalid_config("kNN requires k >= 1"));
        }
        check_two_classes(examples)?;
        let dims = examples[0].0.len();
        // Build the flat matrix straight off the examples slice: one O(n·d)
        // copy into contiguous storage, no per-point Vec allocations.
        let mut points = PointMatrix::with_capacity(examples.len(), dims);
        let mut labels: Vec<Label> = Vec::with_capacity(examples.len());
        for (x, l) in examples {
            points.push_row(x)?;
            labels.push(*l);
        }
        Ok(Knn { k, weighting, tree: KdTree::from_matrix(points)?, labels, dims })
    }

    /// The posterior computation with reusable kd-tree scratch — the one
    /// code path behind both the scalar and batch entry points.
    fn proba_with(&self, scratch: &mut NearestScratch, x: &[f64]) -> f64 {
        self.proba_radius_with(scratch, x).0
    }

    /// Posterior plus the squared k-th-neighbour distance — the influence
    /// radius the incremental-rescoring delta relies on. Any query whose
    /// neighbourhood is unsaturated (or whose traversal failed) reports an
    /// infinite radius, meaning "always dirty".
    fn proba_radius_with(&self, scratch: &mut NearestScratch, x: &[f64]) -> (f64, f64) {
        let neighbors = match self.tree.nearest_with(scratch, x, self.k) {
            Ok(n) => n,
            Err(_) => return (0.5, f64::INFINITY),
        };
        if neighbors.is_empty() {
            return (0.5, f64::INFINITY);
        }
        let radius2 = if neighbors.len() == self.k {
            neighbors[neighbors.len() - 1].0
        } else {
            f64::INFINITY
        };
        let mut pos = 0.0;
        let mut total = 0.0;
        for (d2, idx) in neighbors {
            let w = match self.weighting {
                KnnWeighting::Uniform => 1.0,
                KnnWeighting::InverseDistance => 1.0 / (d2.sqrt() + 1e-9),
            };
            total += w;
            if self.labels[*idx].is_positive() {
                pos += w;
            }
        }
        (pos / total, radius2)
    }
}

impl Classifier for Knn {
    fn predict_proba(&self, x: &[f64]) -> f64 {
        self.proba_with(&mut NearestScratch::new(), x)
    }

    fn predict_proba_batch(&self, xs: &[&[f64]]) -> Vec<f64> {
        crate::batch::map_batch_with(xs, NearestScratch::new, |s, x| self.proba_with(s, x))
    }

    fn predict_proba_batch_tracked(&self, xs: &[&[f64]]) -> ScoredBatch {
        let pairs = crate::batch::map_batch_with(xs, NearestScratch::new, |s, x| {
            self.proba_radius_with(s, x)
        });
        let mut probs = Vec::with_capacity(pairs.len());
        let mut radii2 = Vec::with_capacity(pairs.len());
        for (p, r2) in pairs {
            probs.push(p);
            radii2.push(r2);
        }
        ScoredBatch { probs, radii2: Some(radii2) }
    }

    fn model_delta(
        &self,
        points: &[&[f64]],
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        knn_influence_delta(points, radii2, added, margin, self.parallel_batch_threshold())
    }

    fn model_delta_matrix(
        &self,
        points: &PointMatrix,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        knn_influence_delta_flat(points, radii2, added, margin, self.parallel_batch_threshold())
    }

    fn model_delta_matrix_range(
        &self,
        points: &PointMatrix,
        rows: std::ops::Range<usize>,
        radii2: &[f64],
        added: &[&[f64]],
        margin: f64,
    ) -> ModelDelta {
        crate::delta::knn_influence_delta_flat_range(
            points,
            rows,
            radii2,
            added,
            margin,
            self.parallel_batch_threshold(),
        )
    }

    fn influence_position(&self, x: &[f64]) -> Option<Vec<f64>> {
        // Influence radii are raw-input-space k-th-neighbour distances, so
        // the influence space is the input space itself. Inputs the delta
        // path would reject (wrong dimensionality) map to `None`.
        (x.len() == self.dims).then(|| x.to_vec())
    }

    fn training_len(&self) -> Option<usize> {
        Some(self.labels.len())
    }

    fn dims(&self) -> usize {
        self.dims
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn examples() -> Vec<(Vec<f64>, Label)> {
        vec![
            (vec![0.0, 0.0], Label::Negative),
            (vec![0.1, 0.0], Label::Negative),
            (vec![0.0, 0.1], Label::Negative),
            (vec![5.0, 5.0], Label::Positive),
            (vec![5.1, 5.0], Label::Positive),
            (vec![5.0, 5.1], Label::Positive),
        ]
    }

    #[test]
    fn majority_vote() {
        let model = Knn::fit(3, &examples()).unwrap();
        assert_eq!(model.predict_proba(&[5.0, 5.0]), 1.0);
        assert_eq!(model.predict_proba(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn k1_nearest_label_wins() {
        let model = Knn::fit(1, &examples()).unwrap();
        assert_eq!(model.predict(&[4.0, 4.0]), Label::Positive);
        assert_eq!(model.predict(&[1.0, 1.0]), Label::Negative);
    }

    #[test]
    fn inverse_distance_breaks_ties() {
        // k = 2 with one neighbour of each class: uniform vote gives 0.5,
        // inverse distance leans toward the closer one.
        let ex = vec![(vec![0.0], Label::Negative), (vec![10.0], Label::Positive)];
        let uniform = Knn::fit(2, &ex).unwrap();
        assert!((uniform.predict_proba(&[1.0]) - 0.5).abs() < 1e-9);
        let weighted = Knn::fit_weighted(2, KnnWeighting::InverseDistance, &ex).unwrap();
        assert!(weighted.predict_proba(&[1.0]) < 0.5, "closer to negative");
        assert!(weighted.predict_proba(&[9.0]) > 0.5, "closer to positive");
    }

    #[test]
    fn fit_validations() {
        assert!(Knn::fit(0, &examples()).is_err());
        assert!(Knn::fit(3, &[]).is_err());
    }

    #[test]
    fn tracked_batch_matches_plain_batch() {
        let model = Knn::fit_weighted(3, KnnWeighting::InverseDistance, &examples()).unwrap();
        let queries: Vec<Vec<f64>> = vec![vec![2.5, 2.5], vec![0.0, 0.0], vec![5.05, 5.0]];
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let plain = model.predict_proba_batch(&refs);
        let tracked = model.predict_proba_batch_tracked(&refs);
        for (a, b) in plain.iter().zip(&tracked.probs) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Six examples ≥ k = 3: saturated neighbourhoods report finite radii.
        assert!(tracked.radii2.unwrap().iter().all(|r| r.is_finite()));
        // A distant insertion leaves every query clean.
        let far = [vec![100.0, 100.0]];
        let far_refs: Vec<&[f64]> = far.iter().map(|p| p.as_slice()).collect();
        let tracked = model.predict_proba_batch_tracked(&refs);
        let delta = model.model_delta(&refs, tracked.radii2.as_ref().unwrap(), &far_refs, 0.0);
        assert_eq!(delta.dirty_count(refs.len()), 0);
    }

    #[test]
    fn influence_position_is_the_identity() {
        let model = Knn::fit(3, &examples()).unwrap();
        // Radii are raw-input-space distances, so the influence space is
        // the input space itself…
        assert_eq!(model.influence_position(&[2.5, 2.5]), Some(vec![2.5, 2.5]));
        // …and inputs the delta path would reject have no position.
        assert!(model.influence_position(&[2.5]).is_none());
    }

    #[test]
    fn uncertainty_peaks_between_clusters() {
        // With k = all and uniform weights every query ties at 0.5, so use
        // inverse-distance weighting to expose the gradient.
        let model = Knn::fit_weighted(6, KnnWeighting::InverseDistance, &examples()).unwrap();
        let between = model.uncertainty(&[2.5, 2.5]);
        let inside = model.uncertainty(&[5.0, 5.05]);
        assert!(between > inside, "between={between} inside={inside}");
    }
}
