#!/usr/bin/env bash
# CI gate: formatting, lint, docs, tests, build, and smoke runs of the
# scoring, region-load, fault-matrix, multi-session, rescore, kd-tree
# layout, journal-recovery, sharded-index-plane, and telemetry benches.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --fast   # skip the release build (debug tests + lint only)
#
# Every step must pass; the script stops at the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
[[ "${1:-}" == "--fast" ]] && fast=1

# Formatting gate covers the uei packages only: the vendor stand-ins keep
# their upstream style and are not ours to reformat.
uei_pkgs=(-p uei -p uei-types -p uei-obs -p uei-storage -p uei-learn -p uei-index -p uei-dbms -p uei-explore -p uei-bench)
echo "==> cargo fmt --check (uei packages)"
cargo fmt "${uei_pkgs[@]}" --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --quiet

echo "==> cargo test -q --workspace"
cargo test -q --workspace

if [[ "$fast" -eq 0 ]]; then
    echo "==> cargo build --release"
    cargo build --release
fi

# Smoke-run the scoring bench: 1 sample, reduced matrix. The binary
# asserts batch scores are bit-identical to the sequential path and
# exits nonzero otherwise, so this doubles as a correctness check.
echo "==> scoring_bench --smoke"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
cargo run -p uei-bench --release --bin scoring_bench -- --smoke --out "$tmp/BENCH_scoring.json"
test -s "$tmp/BENCH_scoring.json"

# Smoke-run the region-load bench: cold vs. warm-shared-cache vs. delta
# over a small fixture. The binary asserts all modes reconstruct identical
# rows and that warm/delta beat cold in both modeled bytes and wall time.
echo "==> region_load_bench --smoke"
cargo run -p uei-bench --release --bin region_load_bench -- --smoke --out "$tmp/BENCH_region_load.json"
test -s "$tmp/BENCH_region_load.json"

# Smoke-run the fault matrix: a seeded sweep of {transient, corrupt, slow}
# injection against {loader, prefetcher}. The binary asserts transients are
# absorbed by retries, corruption surfaces without being retried, latency
# spikes never fail a load, and clean-path checksum verification stays
# within noise.
echo "==> fault_matrix --smoke"
cargo run -p uei-bench --release --bin fault_matrix -- --smoke --out "$tmp/BENCH_fault_matrix.json"
test -s "$tmp/BENCH_fault_matrix.json"

# Smoke-run the multi-session bench: 1 vs. 4 concurrent sessions over one
# shared EngineCore. The binary asserts every session completes and that
# the 4-session aggregate cache hit ratio is at least the 1-session ratio.
echo "==> multi_session --smoke"
cargo run -p uei-bench --release --bin multi_session -- --smoke --out "$tmp/BENCH_multi_session.json"
test -s "$tmp/BENCH_multi_session.json"

# Smoke-run the rescore bench: incremental vs. full index-point rescoring
# on a small grid. The binary asserts the two paths hold bit-identical
# scores after every iteration, that no incremental pass rescores more
# than |P| points (cache accounting sanity), and that rescored + cached
# covers every point every iteration.
echo "==> rescore_bench --smoke"
cargo run -p uei-bench --release --bin rescore_bench -- --smoke --out "$tmp/BENCH_rescore.json"
test -s "$tmp/BENCH_rescore.json"

# Smoke-run the kd-tree layout bench: flat SoA bucketed-leaf tree vs. the
# legacy recursive layout on a reduced grid. The binary asserts every
# query's neighbour list is bit-identical across layouts and fails if the
# flat layout's aggregate query throughput drops below the baseline's.
echo "==> kdtree_bench --smoke"
cargo run -p uei-bench --release --bin kdtree_bench -- --smoke --out "$tmp/BENCH_kdtree.json"
test -s "$tmp/BENCH_kdtree.json"

# Smoke-run the recovery bench: one fixed-seed session without and with
# the write-ahead journal, plus a crash injected at the middle journal
# write followed by recovery. The binary asserts clean-path journaling
# overhead stays at or under 5% of session wall time and that every
# recovered run reproduces the uninterrupted run's traces bit-identically.
echo "==> recovery_bench --smoke"
cargo run -p uei-bench --release --bin recovery_bench -- --smoke --out "$tmp/BENCH_recovery.json"
test -s "$tmp/BENCH_recovery.json"

# Smoke-run the shard bench: sharded vs. single-shard index plane over
# small fixed-seed sessions at 1/2/4/8 shards. The binary asserts every
# iteration's full top-θ selection is bit-identical to the single-shard
# reference at every shard count and grid size.
echo "==> shard_bench --smoke"
cargo run -p uei-bench --release --bin shard_bench -- --smoke --out "$tmp/BENCH_shard.json"
test -s "$tmp/BENCH_shard.json"

# Smoke-run the telemetry bench: one fixed-seed journaled session with
# telemetry disabled vs. enabled, plus a micro-benchmark pricing the
# disabled span() call. The binary asserts enabled overhead stays at or
# under 3% of session wall time, the disabled-path estimate under 1%,
# all seven phases are observed, and the modeled traces stay
# bit-identical either way.
echo "==> obs_bench --smoke"
cargo run -p uei-bench --release --bin obs_bench -- --smoke --out "$tmp/BENCH_obs.json"
test -s "$tmp/BENCH_obs.json"

echo "CI gate passed."
