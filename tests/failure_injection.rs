//! Failure injection: damaged on-disk artifacts must surface as typed
//! errors — never panics, never silently wrong exploration results.
//!
//! Hand-crafted corruption (byte flips, truncation, deleted files) covers
//! deterministic damage; the seeded [`FaultInjector`] covers probabilistic
//! read faults under its seed-replay contract.

use std::sync::Arc;

use uei::index::uei::UeiIndex;
use uei::prelude::*;
use uei::storage::fault::{FaultConfig, FaultInjector};
use uei::storage::store::ColumnStore;
use uei::storage::testutil::TempDir;
use uei::types::UeiError;

fn build_store(dir: &TempDir, rows: usize) -> Arc<ColumnStore> {
    let data = generate_sdss_like(&SynthConfig { rows, seed: 5, ..Default::default() });
    let tracker = DiskTracker::new(IoProfile::instant());
    Arc::new(
        ColumnStore::create(
            dir.path(),
            Schema::sdss(),
            &data,
            StoreConfig { chunk_target_bytes: 4096 },
            tracker,
        )
        .unwrap(),
    )
}

struct Anywhere;
impl uei::learn::Classifier for Anywhere {
    fn predict_proba(&self, _: &[f64]) -> f64 {
        0.5
    }
    fn dims(&self) -> usize {
        5
    }
}

#[test]
fn corrupt_chunk_file_yields_corrupt_error_not_panic() {
    let dir = TempDir::new("fail-chunk");
    let store = build_store(&dir, 2000);
    // Flip a byte in the middle of every chunk of dimension 0.
    for meta in &store.manifest().dims[0] {
        let path = dir.join(meta.id().file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
    }
    let mut index =
        UeiIndex::build(Arc::clone(&store), UeiConfig { cells_per_dim: 3, ..UeiConfig::default() })
            .unwrap();
    index.update_uncertainty(&Anywhere);
    match index.select_and_load() {
        Err(UeiError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn missing_chunk_file_yields_io_error() {
    let dir = TempDir::new("fail-missing");
    let store = build_store(&dir, 2000);
    for meta in &store.manifest().dims[2] {
        std::fs::remove_file(dir.join(meta.id().file_name())).unwrap();
    }
    let mut index =
        UeiIndex::build(Arc::clone(&store), UeiConfig { cells_per_dim: 3, ..UeiConfig::default() })
            .unwrap();
    index.update_uncertainty(&Anywhere);
    match index.select_and_load() {
        Err(UeiError::Io { .. }) => {}
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn truncated_rows_file_yields_error_on_fetch() {
    let dir = TempDir::new("fail-rows");
    let store = build_store(&dir, 2000);
    let rows_path = dir.join("rows.dat");
    let bytes = std::fs::read(&rows_path).unwrap();
    std::fs::write(&rows_path, &bytes[..bytes.len() / 2]).unwrap();
    // Rows in the surviving half still read; rows past the cut error.
    assert!(store.fetch_rows(&[0]).is_ok());
    match store.fetch_rows(&[1999]) {
        Err(UeiError::Io { .. }) => {}
        other => panic!("expected Io, got {other:?}"),
    }
}

#[test]
fn tampered_manifest_rejected_at_open() {
    let dir = TempDir::new("fail-manifest");
    let _store = build_store(&dir, 500);
    let manifest_path = dir.join("manifest.json");
    let text = std::fs::read_to_string(&manifest_path).unwrap();
    // Invalidate a key range: make one chunk overlap its predecessor.
    let tampered = text.replacen("\"version\": 1", "\"version\": 9", 1);
    std::fs::write(&manifest_path, tampered).unwrap();
    let tracker = DiskTracker::new(IoProfile::instant());
    match ColumnStore::open(dir.path(), tracker) {
        Err(UeiError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {:?}", other.map(|s| s.num_rows())),
    }
}

#[test]
fn prefetcher_records_failure_and_foreground_still_errors_typed() {
    use uei::index::grid::Grid;
    use uei::index::mapping::ChunkMapping;
    use uei::index::prefetch::Prefetcher;

    let dir = TempDir::new("fail-prefetch");
    let store = build_store(&dir, 2000);
    let grid = Grid::new(store.schema(), 3).unwrap();
    let mapping = ChunkMapping::build(&grid, store.manifest()).unwrap();

    // Corrupt everything in dimension 1 so any region load fails.
    for meta in &store.manifest().dims[1] {
        let path = dir.join(meta.id().file_name());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0x55;
        std::fs::write(&path, bytes).unwrap();
    }

    let pre = Prefetcher::spawn(store.dir(), IoProfile::instant(), grid, mapping).unwrap();
    pre.request(0);
    // Wait for the worker to process and record the failure.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while pre.is_pending(0) && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    assert!(pre.take(0).is_none(), "failed prefetch yields no data");
    let failure = pre.failure(0).expect("failure recorded");
    assert!(failure.contains("corrupt") || failure.contains("crc"), "{failure}");
}

#[test]
fn corrupt_dbms_page_detected_during_scan() {
    use uei::dbms::table::Table;

    let dir = TempDir::new("fail-dbmspage");
    let data = generate_sdss_like(&SynthConfig { rows: 2000, seed: 9, ..Default::default() });
    let tracker = DiskTracker::new(IoProfile::instant());
    let table = Table::create(dir.path(), Schema::sdss(), &data, &tracker).unwrap();
    // Flip a byte in the second page of the heap.
    let heap_path = dir.join("heap.db");
    let mut bytes = std::fs::read(&heap_path).unwrap();
    let offset = uei::dbms::page::PAGE_SIZE + 100;
    bytes[offset] ^= 0x01;
    std::fs::write(&heap_path, bytes).unwrap();

    let mut pool = BufferPool::new(4, tracker).unwrap();
    match table.scan(&mut pool, |_| {}) {
        Err(UeiError::Corrupt { .. }) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

/// Probabilistic read faults through the seeded injector: every failure is
/// a typed `Corrupt` or `Transient` (never a panic, never silently wrong
/// data), and the same seed replays the identical fault sequence.
#[test]
fn injected_read_faults_are_typed_and_replay_by_seed() {
    let dir = TempDir::new("fail-injected");
    let store = build_store(&dir, 2000);
    let faults =
        FaultConfig { seed: 0xD1CE, transient_prob: 0.2, corrupt_prob: 0.3, ..FaultConfig::off() };
    let metas: Vec<_> = store.manifest().dims.iter().flatten().map(|m| m.id()).collect();
    assert!(metas.len() >= 4);

    let run = || {
        let injector = FaultInjector::new(faults).unwrap();
        store.tracker().set_fault_injector(Some(injector.clone()));
        let mut outcomes = Vec::new();
        for _ in 0..10 {
            for id in &metas {
                match store.read_chunk(*id) {
                    Ok(chunk) => {
                        // A read that "succeeds" must be the real chunk.
                        assert_eq!(chunk.id, *id);
                        outcomes.push(0u8);
                    }
                    Err(UeiError::Corrupt { .. }) => outcomes.push(1),
                    Err(UeiError::Transient { .. }) => outcomes.push(2),
                    Err(other) => panic!("untyped fault escaped: {other:?}"),
                }
            }
        }
        store.tracker().set_fault_injector(None);
        let stats = injector.stats();
        (outcomes, stats.transient_errors, stats.corruptions)
    };

    let first = run();
    let second = run();
    assert!(first.1 > 0 && first.2 > 0, "probabilities high enough to fire");
    assert_eq!(first, second, "same seed must replay the same fault sequence");
}
