//! End-to-end integration tests: full exploration sessions over both
//! storage schemes, exercising every crate of the workspace together.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use uei::dbms::table::Table;
use uei::prelude::*;
use uei::storage::store::ColumnStore;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "uei-e2e-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn dataset(n: usize) -> Vec<uei::types::DataPoint> {
    generate_sdss_like(&SynthConfig { rows: n, seed: 1234, ..Default::default() })
}

fn make_oracle(rows: &[uei::types::DataPoint], fraction: f64, seed: u64) -> Oracle {
    let mut rng = Rng::new(seed);
    let target =
        generate_target_region_fraction(rows, &Schema::sdss(), fraction, &mut rng).unwrap();
    Oracle::new(target)
}

fn run_uei(
    dir: &Path,
    rows: &[uei::types::DataPoint],
    oracle: &Oracle,
    labels: usize,
) -> uei::explore::SessionResult {
    let tracker = DiskTracker::new(IoProfile::nvme());
    let store = Arc::new(
        ColumnStore::create(
            dir.join("store"),
            Schema::sdss(),
            rows,
            StoreConfig { chunk_target_bytes: 16 * 1024 },
            tracker.clone(),
        )
        .unwrap(),
    );
    let mut rng = Rng::new(9);
    let mut backend = UeiBackend::new(
        store,
        UeiConfig { cells_per_dim: 4, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        600,
        &mut rng,
    )
    .unwrap();
    let config = SessionConfig { max_labels: labels, eval_sample: 1000, ..Default::default() };
    ExplorationSession::new(&mut backend, oracle, config, tracker).run().unwrap()
}

fn run_dbms(
    dir: &Path,
    rows: &[uei::types::DataPoint],
    oracle: &Oracle,
    labels: usize,
) -> uei::explore::SessionResult {
    let tracker = DiskTracker::new(IoProfile::nvme());
    let table =
        Table::create_padded(dir.join("table"), Schema::sdss(), rows, 4048, &tracker).unwrap();
    let pool_pages = ((table.size_bytes() / 100) as usize / uei::dbms::page::PAGE_SIZE).max(1);
    let pool = BufferPool::new(pool_pages, tracker.clone()).unwrap();
    let mut backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
    let config = SessionConfig { max_labels: labels, eval_sample: 1000, ..Default::default() };
    ExplorationSession::new(&mut backend, oracle, config, tracker).run().unwrap()
}

#[test]
fn both_schemes_learn_the_target_region() {
    let rows = dataset(8_000);
    let oracle = make_oracle(&rows, 0.02, 5);
    let dir = temp_dir("learn");

    let uei = run_uei(&dir, &rows, &oracle, 50);
    let dbms = run_dbms(&dir, &rows, &oracle, 50);

    assert!(uei.final_f_measure > 0.4, "UEI final F = {}", uei.final_f_measure);
    assert!(dbms.final_f_measure > 0.4, "DBMS final F = {}", dbms.final_f_measure);

    // Accuracy improves over the session: the late-stage estimate beats
    // the early-stage one for both schemes.
    for result in [&uei, &dbms] {
        let early: Vec<f64> = result.traces.iter().take(10).filter_map(|t| t.f_measure).collect();
        let late: Vec<f64> =
            result.traces.iter().rev().take(10).filter_map(|t| t.f_measure).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(
            mean(&late) > mean(&early),
            "{}: late {} <= early {}",
            result.backend,
            mean(&late),
            mean(&early)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn uei_is_much_faster_per_iteration() {
    let rows = dataset(10_000);
    let oracle = make_oracle(&rows, 0.01, 7);
    let dir = temp_dir("speed");

    let uei = run_uei(&dir, &rows, &oracle, 25);
    let dbms = run_dbms(&dir, &rows, &oracle, 25);

    let mean =
        |r: &uei::explore::SessionResult| r.total_virtual_secs * 1e3 / r.traces.len().max(1) as f64;
    let (u, d) = (mean(&uei), mean(&dbms));
    assert!(
        d > 10.0 * u,
        "expected >10x per-iteration gap at this scale, got UEI {u:.3} ms vs DBMS {d:.3} ms"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn schemes_never_present_duplicate_examples() {
    let rows = dataset(5_000);
    let oracle = make_oracle(&rows, 0.02, 11);
    let dir = temp_dir("dupes");
    for result in [run_uei(&dir, &rows, &oracle, 40), run_dbms(&dir, &rows, &oracle, 40)] {
        // labels_used counts distinct rows; LabeledSet rejects duplicates,
        // so reaching the requested count proves no example repeated.
        assert!(result.labels_used >= 35, "{}: {}", result.backend, result.labels_used);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_survives_reopen_between_sessions() {
    let rows = dataset(4_000);
    let dir = temp_dir("reopen");
    let tracker = DiskTracker::new(IoProfile::instant());
    ColumnStore::create(
        dir.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 16 * 1024 },
        tracker.clone(),
    )
    .unwrap();

    // Second session opens the existing store from disk — the
    // initialization phase runs once per dataset (paper §3.1).
    let store = Arc::new(ColumnStore::open(dir.join("store"), tracker.clone()).unwrap());
    let mut rng = Rng::new(3);
    let mut backend = UeiBackend::new(
        store,
        UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        300,
        &mut rng,
    )
    .unwrap();
    let oracle = make_oracle(&rows, 0.02, 13);
    let config = SessionConfig { max_labels: 15, eval_sample: 300, ..Default::default() };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
    assert!(result.labels_used >= 10);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn prefetch_session_matches_unprefetched_results() {
    // The prefetcher is a pure latency optimization: it must not change
    // which regions get loaded or what the model learns.
    let rows = dataset(6_000);
    let oracle = make_oracle(&rows, 0.02, 17);
    let run = |prefetch: bool, tag: &str| {
        let dir = temp_dir(tag);
        let tracker = DiskTracker::new(IoProfile::instant());
        let store = Arc::new(
            ColumnStore::create(
                dir.join("store"),
                Schema::sdss(),
                &rows,
                StoreConfig { chunk_target_bytes: 16 * 1024 },
                tracker.clone(),
            )
            .unwrap(),
        );
        let mut rng = Rng::new(21);
        let mut backend = UeiBackend::new(
            store,
            UeiConfig { cells_per_dim: 3, prefetch, ..UeiConfig::default() },
            UncertaintyMeasure::LeastConfidence,
            400,
            &mut rng,
        )
        .unwrap();
        let config = SessionConfig { max_labels: 20, eval_sample: 400, ..Default::default() };
        let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run().unwrap();
        std::fs::remove_dir_all(&dir).ok();
        result
    };
    let plain = run(false, "nopre");
    let prefetched = run(true, "pre");
    assert_eq!(plain.labels_used, prefetched.labels_used);
    assert_eq!(plain.final_f_measure, prefetched.final_f_measure);
    // The sequence of labeled examples is identical.
    let ids = |r: &uei::explore::SessionResult| -> Vec<bool> {
        r.traces.iter().map(|t| t.label_positive).collect()
    };
    assert_eq!(ids(&plain), ids(&prefetched));
}
