//! Integration tests pinning the paper's qualitative claims at test scale.
//!
//! These are the assertions EXPERIMENTS.md reports at full scale, kept
//! small enough to run in the regular test suite:
//!
//! 1. §3.3 — per-iteration cost drops from O(kn) to O(ke) with e ≪ n;
//! 2. Figure 6 — UEI response time is flat across target-region sizes;
//! 3. Figure 6 — the baseline rereads the whole table every iteration
//!    once memory ≪ data, while UEI reads a small, bounded slice;
//! 4. §3.2 — uncertainty-directed region choice tracks the decision
//!    boundary (the loaded cell contains boundary points).

use uei::explore::workload::RegionSize;
use uei_bench::experiments::{
    complexity, fig6_response_time, oracles_for_runs, run_session, Scheme, Variation,
};
use uei_bench::fixture::{ExperimentScale, Fixture};

fn scale() -> ExperimentScale {
    ExperimentScale {
        rows: 6_000,
        runs: 2,
        max_labels: 18,
        gamma: 400,
        eval_sample: 0,
        chunk_target_bytes: 8 * 1024,
        cells_per_dim: 4,
        memory_fraction: 0.01,
        row_pad_bytes: 4048,
        seed: 0x00C1_A115,
    }
}

fn fixture(tag: &str) -> (Fixture, std::path::PathBuf) {
    let root = std::env::temp_dir().join(format!(
        "uei-claims-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    (Fixture::build(&root, scale()).unwrap(), root)
}

#[test]
fn complexity_e_much_smaller_than_n() {
    let (fixture, root) = fixture("complexity");
    let report = complexity(&fixture).unwrap();
    assert_eq!(report.dbms_examined_mean as u64, report.n, "baseline examines all n");
    assert!(
        report.n_over_e > 10.0,
        "e should be a small fraction of n, got n/e = {}",
        report.n_over_e
    );
    assert!(report.byte_ratio > 20.0, "byte ratio {}", report.byte_ratio);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn response_time_flat_across_region_sizes_for_uei() {
    let (fixture, root) = fixture("flat");
    let fig = fig6_response_time(&fixture).unwrap();
    let uei: Vec<f64> =
        fig.rows.iter().filter(|r| r.scheme == "UEI").map(|r| r.mean_response_ms).collect();
    let dbms: Vec<f64> =
        fig.rows.iter().filter(|r| r.scheme != "UEI").map(|r| r.mean_response_ms).collect();
    assert_eq!(uei.len(), 3);
    // Paper: "the response time remains the same across all three target
    // interest regions sizes" — for BOTH schemes.
    for series in [&uei, &dbms] {
        let max = series.iter().cloned().fold(f64::MIN, f64::max);
        let min = series.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max < min * 4.0, "response should not scale with region size: {series:?}");
    }
    // And the gap between schemes is large at every size.
    for (u, d) in uei.iter().zip(&dbms) {
        assert!(d > &(u * 10.0), "UEI {u} ms vs DBMS {d} ms");
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn baseline_rereads_table_uei_reads_bounded_slice() {
    let (fixture, root) = fixture("reread");
    let oracles = oracles_for_runs(&fixture, RegionSize::Medium, 1).unwrap();

    let dbms = run_session(&fixture, Scheme::Dbms, &oracles[0], 0, &Variation::default()).unwrap();
    let (table, _, _) = fixture.open_table(uei::storage::IoProfile::nvme()).unwrap();
    for trace in &dbms.traces {
        // Per-page charges round down, so allow a sliver under the total.
        assert!(
            trace.bytes_read >= table.logical_size_bytes() / 100 * 99,
            "iteration {} read {} < table {}",
            trace.iteration,
            trace.bytes_read,
            table.logical_size_bytes()
        );
    }

    let uei = run_session(&fixture, Scheme::Uei, &oracles[0], 0, &Variation::default()).unwrap();
    let (store, _) = fixture.open_store(uei::storage::IoProfile::nvme()).unwrap();
    let full = store.manifest().total_chunk_bytes();
    for trace in &uei.traces {
        assert!(
            trace.bytes_read < full,
            "UEI iteration {} read {} >= full inverted set {}",
            trace.iteration,
            trace.bytes_read,
            full
        );
    }
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn region_loads_track_the_decision_boundary() {
    // After the model has some labels, the loaded region should contain a
    // healthy share of near-boundary tuples (that is the whole point of
    // the index). We check that loaded regions produce a mix of labels
    // rather than constant negatives.
    let (fixture, root) = fixture("boundary");
    let oracles = oracles_for_runs(&fixture, RegionSize::Large, 1).unwrap();
    let result = run_session(&fixture, Scheme::Uei, &oracles[0], 0, &Variation::default()).unwrap();
    let late_positive =
        result.traces.iter().skip(result.traces.len() / 2).filter(|t| t.label_positive).count();
    assert!(
        late_positive > 0,
        "uncertainty-directed loading should surface positives in the later stage"
    );
    std::fs::remove_dir_all(&root).ok();
}
