//! Tuning interactive exploration: the latency threshold σ and the
//! background prefetcher (paper §3.2).
//!
//! UEI lets the user set a response-latency threshold σ; when region loads
//! approach it, UEI starts fetching the predicted next region in the
//! background, θ = ⌈τ/σ⌉ iterations ahead. This example runs the same
//! exploration with the prefetcher off and on, and shows how many regions
//! the prefetcher served and what that does to foreground latency.
//!
//! ```text
//! cargo run --release --example latency_tuning
//! ```

use std::sync::Arc;

use uei::prelude::*;

fn run(prefetch: bool, defer: bool, sigma: f64) -> uei::types::Result<(f64, usize, usize, u64)> {
    let rows = generate_sdss_like(&SynthConfig { rows: 25_000, seed: 3, ..Default::default() });
    let dir = std::env::temp_dir().join(format!("uei-example-latency-{prefetch}-{defer}-{sigma}"));
    let _ = std::fs::remove_dir_all(&dir);
    // A slow device makes the trade-off visible: a SATA SSD instead of NVMe.
    let tracker = DiskTracker::new(IoProfile::sata_ssd());
    let store = Arc::new(ColumnStore::create(
        &dir,
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 16 * 1024 },
        tracker.clone(),
    )?);

    let mut rng = Rng::new(17);
    let mut backend = UeiBackend::new(
        store,
        UeiConfig {
            cells_per_dim: 5,
            latency_threshold_secs: sigma,
            prefetch,
            // A tight chunk cache (~1 % of the data) so synchronous region
            // loads actually pay I/O, as in the paper's memory-restricted
            // setup; otherwise the cache hides the prefetcher's benefit.
            chunk_cache_bytes: 64 * 1024,
            regions_in_memory: 1,
            defer_swaps: defer,
            ..UeiConfig::default()
        },
        UncertaintyMeasure::LeastConfidence,
        1_000,
        &mut rng,
    )?;

    let target = generate_target_region(&rows, &Schema::sdss(), RegionSize::Medium, &mut rng)?;
    let oracle = Oracle::new(target);
    let config = SessionConfig { max_labels: 50, eval_sample: 0, ..Default::default() };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run()?;

    let mean_ms = result.total_virtual_secs * 1e3 / result.traces.len().max(1) as f64;
    let prefetched = result.traces.iter().filter(|t| t.prefetched).count();
    let total = result.traces.len();
    let deferred = backend.index().deferred_swaps();
    std::fs::remove_dir_all(&dir).ok();
    Ok((mean_ms, prefetched, total, deferred))
}

fn main() -> uei::types::Result<()> {
    println!("exploring on a modeled SATA SSD (550 MB/s) with a medium target region\n");
    let (off_ms, _, n, _) = run(false, false, 0.5)?;
    println!("prefetch OFF          : mean foreground response {off_ms:.2} ms over {n} iterations");
    for sigma in [0.5, 0.1, 0.02] {
        let (ms, served, n, _) = run(true, false, sigma)?;
        println!(
            "prefetch ON, σ = {sigma:>5}s: mean foreground response {ms:.2} ms; {served}/{n} \
             regions served from background loads"
        );
    }
    // Swap deferral: with a σ far below the region load time, UEI keeps
    // serving the current region rather than blowing the threshold.
    let (ms, _, n, deferred) = run(false, true, 1e-6)?;
    println!(
        "defer ON,    σ =  1µs : mean foreground response {ms:.2} ms; {deferred}/{n} \
         swaps deferred to hold σ"
    );
    println!(
        "\nPrefetched regions cost zero foreground I/O: their load overlapped the user's\n\
         labeling think-time; deferral trades candidate freshness for latency when even\n\
         that is not enough. Together they implement §3.2's tuning knobs."
    );
    Ok(())
}
