//! UEI beyond IDE: an active-learning **record matching** task.
//!
//! The paper notes UEI "can also be used in combination with any active
//! learning-based human-in-the-loop (HIL) applications", naming record
//! matching and entity resolution (§1). This example builds such a task:
//! candidate record *pairs* are embedded as similarity-feature vectors
//! (name similarity, address similarity, phone/email agreement, …), the
//! simulated "user" confirms or rejects matches, and UEI serves the most
//! uncertain pairs from disk exactly as it serves tuples in IDE.
//!
//! ```text
//! cargo run --release --example entity_matching
//! ```

use std::sync::Arc;

use uei::learn::strategy::QueryStrategy;
use uei::prelude::*;
use uei::types::{AttributeDef, DataPoint};

/// Similarity features of one candidate record pair. True matches cluster
/// near (1, 1, 1, 1); hard cases sit in the middle of the space.
fn candidate_pairs(n: usize, seed: u64) -> (Vec<DataPoint>, Vec<bool>) {
    let mut rng = Rng::new(seed);
    let mut rows = Vec::with_capacity(n);
    let mut truth = Vec::with_capacity(n);
    for id in 0..n {
        let is_match = rng.bool(0.15);
        let (name_sim, addr_sim, phone_eq, email_sim) = if is_match {
            (
                rng.normal(0.88, 0.08).clamp(0.0, 1.0),
                rng.normal(0.80, 0.12).clamp(0.0, 1.0),
                if rng.bool(0.7) { 1.0 } else { 0.0 },
                rng.normal(0.75, 0.15).clamp(0.0, 1.0),
            )
        } else {
            (
                rng.normal(0.35, 0.18).clamp(0.0, 1.0),
                rng.normal(0.30, 0.18).clamp(0.0, 1.0),
                if rng.bool(0.05) { 1.0 } else { 0.0 },
                rng.normal(0.25, 0.15).clamp(0.0, 1.0),
            )
        };
        rows.push(DataPoint::new(id as u64, vec![name_sim, addr_sim, phone_eq, email_sim]));
        truth.push(is_match);
    }
    (rows, truth)
}

fn pair_schema() -> Schema {
    Schema::new(vec![
        AttributeDef::new("name_similarity", 0.0, 1.0).expect("static"),
        AttributeDef::new("address_similarity", 0.0, 1.0).expect("static"),
        AttributeDef::new("phone_equal", 0.0, 1.0).expect("static"),
        AttributeDef::new("email_similarity", 0.0, 1.0).expect("static"),
    ])
    .expect("static schema")
}

fn main() -> uei::types::Result<()> {
    let (pairs, truth) = candidate_pairs(25_000, 99);
    let matches = truth.iter().filter(|&&m| m).count();
    println!("{} candidate pairs, {} true matches", pairs.len(), matches);

    // Store the similarity vectors with UEI's inverted columnar layout.
    let dir = std::env::temp_dir().join("uei-example-er");
    let _ = std::fs::remove_dir_all(&dir);
    let tracker = DiskTracker::new(IoProfile::nvme());
    let schema = pair_schema();
    let store = Arc::new(ColumnStore::create(
        &dir,
        schema.clone(),
        &pairs,
        StoreConfig { chunk_target_bytes: 16 * 1024 },
        tracker.clone(),
    )?);

    let mut rng = Rng::new(5);
    let index_config = UeiConfig { cells_per_dim: 4, ..UeiConfig::default() };
    let mut index = UeiIndex::build(Arc::clone(&store), index_config)?;
    println!(
        "UEI grid: {} symbolic index points over the 4-D similarity space",
        index.grid().num_cells()
    );

    // Active learning loop: the "user" is the ground truth above.
    let mut labeled: Vec<(Vec<f64>, Label)> = Vec::new();
    let mut labeled_ids = std::collections::HashSet::new();
    let pool = store.sample_rows(600, &mut rng)?;

    // Seed with one match and one non-match.
    for p in &pool {
        let is_match = truth[p.id.as_usize()];
        let needed = if is_match {
            !labeled.iter().any(|(_, l)| l.is_positive())
        } else {
            !labeled.iter().any(|(_, l)| !l.is_positive())
        };
        if needed {
            labeled.push((p.values.clone(), Label::from_bool(is_match)));
            labeled_ids.insert(p.id);
        }
        if labeled.len() >= 2 && labeled.iter().any(|(_, l)| l.is_positive()) {
            break;
        }
    }

    let scaler = MinMaxScaler::from_schema(&schema);
    let mut strategy = UncertaintySampling::new(UncertaintyMeasure::LeastConfidence);
    let budget = 50;
    for round in 0..budget {
        let model =
            ScaledClassifier::train(EstimatorKind::Dwknn { k: 5 }, scaler.clone(), &labeled)?;

        // UEI: load the subspace of most-uncertain candidate pairs.
        index.update_uncertainty(&model);
        let load = index.select_and_load()?;
        let mut candidates: Vec<DataPoint> =
            load.rows.into_iter().filter(|p| !labeled_ids.contains(&p.id)).collect();
        candidates.extend(pool.iter().filter(|p| !labeled_ids.contains(&p.id)).cloned());

        let Some(pick) = strategy.select(&model, &candidates) else { break };
        let point = candidates[pick].clone();
        let is_match = truth[point.id.as_usize()];
        labeled.push((point.values.clone(), Label::from_bool(is_match)));
        labeled_ids.insert(point.id);

        if (round + 1) % 10 == 0 {
            // Evaluate on the full candidate set.
            let mut tp = 0u64;
            let mut fp = 0u64;
            let mut fn_ = 0u64;
            for (p, &m) in pairs.iter().zip(&truth) {
                let predicted = model.predict(&p.values).is_positive();
                match (m, predicted) {
                    (true, true) => tp += 1,
                    (false, true) => fp += 1,
                    (true, false) => fn_ += 1,
                    _ => {}
                }
            }
            let cm = uei::learn::metrics::ConfusionMatrix { tp, fp, fn_, tn: 0 };
            println!(
                "after {:>3} labels: match-F1 = {:.3} (precision {:.3}, recall {:.3})",
                labeled.len(),
                cm.f_measure(),
                cm.precision(),
                cm.recall()
            );
        }
    }

    let final_model = ScaledClassifier::train(EstimatorKind::Dwknn { k: 5 }, scaler, &labeled)?;
    let predicted_matches =
        pairs.iter().filter(|p| final_model.predict(&p.values).is_positive()).count();
    println!(
        "\nlabeled {} of {} pairs ({:.2} %) to build the matcher; it flags {} pairs as matches",
        labeled.len(),
        pairs.len(),
        100.0 * labeled.len() as f64 / pairs.len() as f64,
        predicted_matches
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
