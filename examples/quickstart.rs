//! Quickstart: build a store, index it with UEI, and run a short
//! interactive exploration with a simulated user.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use uei::prelude::*;

fn main() -> uei::types::Result<()> {
    // ------------------------------------------------------------------
    // 1. Data: an SDSS-like dataset (rowc, colc, ra, dec, field).
    // ------------------------------------------------------------------
    let rows = generate_sdss_like(&SynthConfig { rows: 20_000, seed: 7, ..Default::default() });
    println!("generated {} SDSS-like tuples", rows.len());

    // ------------------------------------------------------------------
    // 2. Index initialization (paper Algorithm 2, lines 1–11): vertical
    //    decomposition, sorted <key, {ids}> chunks on disk, grid of
    //    symbolic index points.
    // ------------------------------------------------------------------
    let dir = std::env::temp_dir().join("uei-example-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let tracker = DiskTracker::new(IoProfile::nvme()); // the paper's disk
    let store = Arc::new(ColumnStore::create(
        &dir,
        Schema::sdss(),
        &rows,
        StoreConfig::default(),
        tracker.clone(),
    )?);
    println!(
        "store initialized: {} chunks, {} bytes of inverted columns",
        store.manifest().total_chunks(),
        store.manifest().total_chunk_bytes()
    );

    let mut rng = Rng::new(42);
    let mut backend = UeiBackend::new(
        store,
        UeiConfig { cells_per_dim: 4, ..UeiConfig::default() },
        UncertaintyMeasure::LeastConfidence,
        800, // γ: uniform sample cached in memory
        &mut rng,
    )?;

    // ------------------------------------------------------------------
    // 3. A simulated user interested in one region (~1 % of the data).
    // ------------------------------------------------------------------
    let target = generate_target_region_fraction(&rows, &Schema::sdss(), 0.01, &mut rng)?;
    println!(
        "target region: {} relevant tuples ({:.2} % of the data)",
        target.relevant_ids.len(),
        target.fraction * 100.0
    );
    let oracle = Oracle::new(target);

    // ------------------------------------------------------------------
    // 4. Interactive exploration: 40 labels of yes/no feedback.
    // ------------------------------------------------------------------
    let config = SessionConfig { max_labels: 40, eval_sample: 1_500, ..Default::default() };
    let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run()?;

    println!("\n labels |  est. F-measure | response (modeled)");
    for t in result.traces.iter().step_by(5) {
        println!(
            "  {:>5} | {:>14.3} | {:>8.2} ms{}",
            t.labels,
            t.f_measure.unwrap_or(f64::NAN),
            t.response_virtual_ms,
            if t.prefetched { "  (prefetched)" } else { "" }
        );
    }
    println!("\nfinal F-measure (exact, full result retrieval): {:.3}", result.final_f_measure);
    println!(
        "mean response time: {:.2} ms over {} iterations",
        result.total_virtual_secs * 1e3 / result.traces.len().max(1) as f64,
        result.traces.len()
    );

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
