//! Store inspection and integrity checking — the operational side of UEI.
//!
//! Builds a store, prints what the initialization phase produced (the
//! paper's Figure 2 layout: per-dimension sorted `<key, {ids}>` chunks),
//! runs a full `fsck`-style verification, then demonstrates that
//! corruption is caught.
//!
//! ```text
//! cargo run --release --example store_inspection
//! ```

use uei::prelude::*;
use uei::storage::store::ColumnStore;

fn main() -> uei::types::Result<()> {
    let rows = generate_sdss_like(&SynthConfig { rows: 15_000, seed: 31, ..Default::default() });
    let dir = std::env::temp_dir().join("uei-example-inspect");
    let _ = std::fs::remove_dir_all(&dir);

    // Initialization phase, with I/O accounting.
    let tracker = DiskTracker::new(IoProfile::nvme());
    let before = tracker.snapshot();
    let store = ColumnStore::create(
        &dir,
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 32 * 1024 },
        tracker.clone(),
    )?;
    let init_io = tracker.delta(&before);
    println!(
        "initialization phase: wrote {} bytes in {:.1} ms (modeled NVMe write)",
        init_io.stats.bytes_written,
        init_io.virtual_elapsed.as_secs_f64() * 1e3
    );

    // What the inverted layout looks like, per dimension.
    println!("\ndimension          chunks   entries      ids   bytes   compression");
    let row_bytes = store.rows_file_bytes();
    for (d, attr) in store.schema().attributes().iter().enumerate() {
        let catalog = &store.manifest().dims[d];
        let entries: u64 = catalog.iter().map(|c| c.num_entries).sum();
        let ids: u64 = catalog.iter().map(|c| c.num_ids).sum();
        let bytes: u64 = catalog.iter().map(|c| c.file_size).sum();
        println!(
            "{:<18} {:>6} {:>9} {:>8} {:>7}   {:>5.2}x vs column of f64",
            attr.name,
            catalog.len(),
            entries,
            ids,
            bytes,
            (ids * 8) as f64 / bytes as f64,
        );
    }
    println!(
        "\nrow-major companion file: {} bytes; total chunk bytes: {}",
        row_bytes,
        store.manifest().total_chunk_bytes()
    );
    println!(
        "note how `field` (a low-cardinality attribute) compresses best: many ids share \
         each key, so the\ninverted <key, {{ids}}> grouping pays off exactly as the paper's \
         Figure 2 intends."
    );

    // Full integrity verification.
    let report = store.verify()?;
    println!(
        "\nverify: OK — {} rows covered exactly once in each of {} dimensions ({:?} chunks)",
        report.rows, report.dims, report.chunks_per_dim
    );

    // Now damage one chunk and show the checks firing.
    let victim = store.manifest().dims[0][0].id();
    let path = dir.join(victim.file_name());
    let mut bytes = std::fs::read(&path).expect("chunk file exists");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, bytes).expect("rewrite chunk");
    match store.verify() {
        Err(e) => println!("\nafter flipping one bit in {victim}: verify => {e}"),
        Ok(_) => unreachable!("corruption must be detected"),
    }

    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
