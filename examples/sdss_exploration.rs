//! Side-by-side exploration: UEI vs the MySQL-like baseline on the same
//! task — a miniature of the paper's whole evaluation.
//!
//! Both schemes explore the *same* target region with the *same* simulated
//! user under the *same* 1 % memory restriction, and the example prints
//! accuracy convergence and per-iteration response times for both.
//!
//! ```text
//! cargo run --release --example sdss_exploration
//! ```

use std::sync::Arc;

use uei::dbms::table::Table;
use uei::prelude::*;

const ROWS: usize = 30_000;
const LABELS: usize = 60;
const MEMORY_FRACTION: f64 = 0.01;

fn main() -> uei::types::Result<()> {
    let rows = generate_sdss_like(&SynthConfig { rows: ROWS, seed: 11, ..Default::default() });
    let mut rng = Rng::new(2025);
    let target = generate_target_region(&rows, &Schema::sdss(), RegionSize::Medium, &mut rng)?;
    println!(
        "exploring a medium target region: {} relevant of {} tuples ({:.2} %)",
        target.relevant_ids.len(),
        rows.len(),
        target.fraction * 100.0
    );
    let oracle = Oracle::new(target);
    let root = std::env::temp_dir().join("uei-example-sdss");
    let _ = std::fs::remove_dir_all(&root);

    let config = SessionConfig { max_labels: LABELS, eval_sample: 2_000, ..Default::default() };

    // --- UEI scheme ----------------------------------------------------
    let uei_tracker = DiskTracker::new(IoProfile::nvme());
    let store = Arc::new(ColumnStore::create(
        root.join("store"),
        Schema::sdss(),
        &rows,
        StoreConfig { chunk_target_bytes: 16 * 1024 },
        uei_tracker.clone(),
    )?);
    let cache_bytes = (store.manifest().total_chunk_bytes() as f64 * MEMORY_FRACTION) as usize;
    let mut uei_rng = Rng::new(1);
    let mut uei_backend = UeiBackend::new(
        store,
        UeiConfig {
            cells_per_dim: 5,
            chunk_cache_bytes: cache_bytes.max(64 * 1024),
            ..UeiConfig::default()
        },
        UncertaintyMeasure::LeastConfidence,
        1_000,
        &mut uei_rng,
    )?;
    let uei_result =
        ExplorationSession::new(&mut uei_backend, &oracle, config.clone(), uei_tracker).run()?;

    // --- MySQL-like scheme ----------------------------------------------
    let dbms_tracker = DiskTracker::new(IoProfile::nvme());
    // Full-width rows like the paper's PhotoObjAll (≈4 KB each, charged in
    // the I/O model).
    let table =
        Table::create_padded(root.join("table"), Schema::sdss(), &rows, 4048, &dbms_tracker)?;
    let pool_pages = ((table.size_bytes() as f64 * MEMORY_FRACTION) as usize
        / uei::dbms::page::PAGE_SIZE)
        .max(1);
    let pool = BufferPool::new(pool_pages, dbms_tracker.clone())?;
    let mut dbms_backend = DbmsBackend::with_pool(table, pool, UncertaintyMeasure::LeastConfidence);
    let dbms_result =
        ExplorationSession::new(&mut dbms_backend, &oracle, config, dbms_tracker).run()?;

    // --- Report ----------------------------------------------------------
    println!("\n labels |   UEI F  | MySQL F  |  UEI ms  | MySQL ms");
    for t in uei_result.traces.iter().step_by(6) {
        let other = dbms_result.traces.iter().find(|d| d.labels == t.labels);
        println!(
            "  {:>5} | {:>8.3} | {:>8.3} | {:>8.2} | {:>8.2}",
            t.labels,
            t.f_measure.unwrap_or(f64::NAN),
            other.and_then(|d| d.f_measure).unwrap_or(f64::NAN),
            t.response_virtual_ms,
            other.map(|d| d.response_virtual_ms).unwrap_or(f64::NAN),
        );
    }
    let uei_mean = uei_result.total_virtual_secs * 1e3 / uei_result.traces.len() as f64;
    let dbms_mean = dbms_result.total_virtual_secs * 1e3 / dbms_result.traces.len() as f64;
    println!(
        "\nfinal F-measure:  UEI {:.3}   MySQL-like {:.3}",
        uei_result.final_f_measure, dbms_result.final_f_measure
    );
    println!(
        "mean response:    UEI {uei_mean:.2} ms   MySQL-like {dbms_mean:.2} ms   ({:.0}x)",
        dbms_mean / uei_mean.max(1e-9)
    );

    std::fs::remove_dir_all(&root).ok();
    Ok(())
}
