//! # uei — Uncertainty Estimation Index
//!
//! A Rust reproduction of *"On Supporting Scalable Active Learning-based
//! Interactive Data Exploration with Uncertainty Estimation Index"*
//! (Ge & Chrysanthis, EDBT 2021).
//!
//! UEI lets uncertainty-sampling-based interactive data exploration (IDE)
//! run over datasets far larger than main memory at sub-second per-
//! iteration response times: a coarse grid of *symbolic index points* is
//! scored by the current classifier to predict which on-disk subspace
//! holds the most uncertain objects, and only that subspace is loaded.
//!
//! This facade crate re-exports the workspace:
//!
//! - [`types`] — shared kernel (points, regions, schema, RNG, codecs);
//! - [`storage`] — the inverted columnar chunked store + modeled I/O;
//! - [`dbms`] — the MySQL-like baseline row store;
//! - [`learn`] — DWKNN & friends, query strategies, metrics;
//! - [`index`] — the Uncertainty Estimation Index itself;
//! - [`explore`] — REQUEST-like exploration sessions, synthetic SDSS data,
//!   the simulated user.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use uei::prelude::*;
//!
//! # fn main() -> uei::types::Result<()> {
//! // 1. Generate a small SDSS-like dataset and initialize the store.
//! let rows = generate_sdss_like(&SynthConfig { rows: 2_000, ..Default::default() });
//! let dir = std::env::temp_dir().join("uei-doc-quickstart");
//! let _ = std::fs::remove_dir_all(&dir);
//! let tracker = DiskTracker::new(IoProfile::nvme());
//! let store = ColumnStore::create(
//!     &dir, Schema::sdss(), &rows, StoreConfig::default(), tracker.clone())?;
//!
//! // 2. Build the index and an exploration backend.
//! let mut rng = Rng::new(42);
//! let mut backend = UeiBackend::new(
//!     Arc::new(store),
//!     UeiConfig { cells_per_dim: 3, ..UeiConfig::default() },
//!     UncertaintyMeasure::LeastConfidence,
//!     200,
//!     &mut rng,
//! )?;
//!
//! // 3. Simulate a user interested in a region covering ~2 % of the data.
//! let target = generate_target_region_fraction(
//!     &rows, &Schema::sdss(), 0.02, &mut rng)?;
//! let oracle = Oracle::new(target);
//!
//! // 4. Run a short exploration session.
//! let config = SessionConfig { max_labels: 10, eval_sample: 200, ..Default::default() };
//! let result = ExplorationSession::new(&mut backend, &oracle, config, tracker).run()?;
//! assert!(result.labels_used >= 2);
//! # std::fs::remove_dir_all(&dir).ok();
//! # Ok(())
//! # }
//! ```

pub use uei_dbms as dbms;
pub use uei_explore as explore;
pub use uei_index as index;
pub use uei_learn as learn;
pub use uei_storage as storage;
pub use uei_types as types;

/// Commonly used items, importable as `use uei::prelude::*`.
pub mod prelude {
    pub use uei_dbms::{BufferPool, Table};
    pub use uei_explore::{
        average_traces, generate_sdss_like, generate_target_region,
        generate_target_region_fraction, DbmsBackend, ExplorationBackend, ExplorationSession,
        Oracle, RegionSize, SessionConfig, SynthConfig, UeiBackend,
    };
    pub use uei_index::{UeiConfig, UeiIndex};
    pub use uei_learn::{
        Classifier, Dwknn, EstimatorKind, MinMaxScaler, ScaledClassifier, UncertaintyMeasure,
        UncertaintySampling,
    };
    pub use uei_storage::{ColumnStore, DiskTracker, IoProfile, StoreConfig};
    pub use uei_types::{DataPoint, Label, Region, Rng, RowId, Schema};
}
