//! Vendored offline shim for the `parking_lot` API subset this workspace
//! uses (`Mutex`, `Condvar::wait_for`), backed by `std::sync`.
//!
//! The build container has no network access and no crates.io mirror, so
//! external dependencies are replaced by minimal local stubs (see
//! `vendor/README.md`). Semantics match `parking_lot` for the covered
//! surface: `lock()` returns the guard directly (poisoning is swallowed by
//! re-entering the poisoned lock, which is what `parking_lot` does by not
//! having poisoning at all).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// Mutual exclusion primitive; `lock()` never returns an error.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(guard) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => {
                Some(MutexGuard { inner: Some(p.into_inner()) })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard; the lock is released on drop.
///
/// Holds an `Option` internally so `Condvar::wait_for` can temporarily move
/// the underlying `std` guard out (std's condvar API takes ownership).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard present outside wait")
    }
}

/// Condition variable compatible with [`Mutex`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present before wait");
        let inner = self.inner.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Waits with a timeout; returns whether the wait timed out.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present before wait");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Result of a timed wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
    }

    #[test]
    fn condvar_notified_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let r = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!r.timed_out(), "notification should arrive quickly");
        }
        t.join().unwrap();
    }
}
