//! Vendored offline shim for the `crossbeam::channel` API subset this
//! workspace uses (`unbounded`, cloneable `Sender`, blocking `Receiver`),
//! backed by `std::sync::mpsc`. See `vendor/README.md` for why external
//! crates are stubbed locally.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    /// Sending half; cloneable.
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender { inner: self.inner.clone() }
        }
    }

    impl<T> Sender<T> {
        /// Sends a message; errors only when the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.inner.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender")
        }
    }

    /// Receiving half.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives; errors when all senders are gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|_| RecvError)
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.inner.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => TryRecvError::Empty,
                mpsc::TryRecvError::Disconnected => TryRecvError::Disconnected,
            })
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver")
        }
    }

    /// The receiver disconnected before the message could be delivered.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Every sender disconnected and the queue is drained.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Non-blocking receive outcome when no message is ready.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn roundtrip_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(7).unwrap());
            assert_eq!(rx.recv().unwrap(), 7);
            drop(tx);
            assert!(rx.recv().is_err());
        }
    }
}
