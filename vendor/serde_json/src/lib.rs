//! Vendored offline JSON codec for the serde stub (`vendor/serde`).
//!
//! Covers the call surface this workspace uses — `to_vec`, `to_vec_pretty`,
//! `from_slice` (plus string variants) — with serde_json-compatible
//! behaviour where it matters:
//!
//! - floats print via Rust's shortest-roundtrip formatting and parse via
//!   `str::parse::<f64>` (correctly rounded), so `f64` values round-trip
//!   bit-exactly;
//! - integers stay integers (no detour through `f64`);
//! - non-finite floats serialize as `null` (what serde_json's lossy mode
//!   does) and deserialize back as NaN;
//! - malformed input yields an `Error` with a byte offset, never a panic,
//!   and parser recursion is depth-limited so corrupt files cannot blow the
//!   stack (the failure-injection tests feed truncated/corrupt manifests).

use std::fmt;

use serde::{Deserialize, Serialize, Value};

/// Maximum nesting depth accepted by the parser.
const MAX_DEPTH: usize = 128;

/// JSON (de)serialization error: message plus byte offset when parsing.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(msg: impl Into<String>, offset: usize) -> Self {
        Error { msg: msg.into(), offset: Some(offset) }
    }

    fn data(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string(), offset: None }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {}", self.msg, off),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes `value` as compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string(value)?.into_bytes())
}

/// Serializes `value` as pretty-printed (2-space indented) JSON bytes.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(n) => {
            out.push_str(&n.to_string());
        }
        Value::Int(n) => {
            out.push_str(&n.to_string());
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, indent, level, items.len(), '[', ']', |out, i, ind, lvl| {
                write_value(out, &items[i], ind, lvl);
            });
        }
        Value::Object(fields) => {
            write_seq(out, indent, level, fields.len(), '{', '}', |out, i, ind, lvl| {
                let (k, fv) = &fields[i];
                write_string(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, fv, ind, lvl);
            });
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<&str>,
    level: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize, Option<&str>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=level {
                out.push_str(pad);
            }
        }
        item(out, i, indent, level + 1);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..level {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // serde_json emits null for non-finite floats.
        out.push_str("null");
        return;
    }
    // `{:?}` is Rust's shortest representation that round-trips; it always
    // contains '.' or 'e' for non-integral values, and prints e.g. "1.0"
    // for integral ones, so the token re-parses as a float.
    out.push_str(&format!("{x:?}"));
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserializes a value of type `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let value = parse_value_bytes(bytes)?;
    T::from_value(&value).map_err(Error::data)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    from_slice(s.as_bytes())
}

fn parse_value_bytes(bytes: &[u8]) -> Result<Value> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse("trailing characters", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::parse(format!("expected `{word}`"), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::parse("recursion limit exceeded", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::parse("expected `,` or `]`", self.pos)),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let v = self.value(depth + 1)?;
                    fields.push((key, v));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error::parse("expected `,` or `}`", self.pos)),
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::parse(format!("unexpected byte 0x{c:02x}"), self.pos)),
            None => Err(Error::parse("unexpected end of input", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((hi - 0xD800) << 10)
                                        + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => {
                                    return Err(Error::parse(
                                        "invalid unicode escape",
                                        self.pos,
                                    ))
                                }
                            }
                            continue; // hex4 advanced pos already
                        }
                        _ => return Err(Error::parse("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::parse("invalid UTF-8 in string", self.pos))?;
                    let c = s.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::parse("truncated unicode escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        let n = u32::from_str_radix(s, 16)
            .map_err(|_| Error::parse("invalid unicode escape", self.pos))?;
        self.pos += 4;
        Ok(n)
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse("invalid number", start))?;
        if !is_float {
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(n) = digits.parse::<u64>() {
                    if n <= i64::MAX as u64 {
                        return Ok(Value::Int(-(n as i64)));
                    }
                    if n == i64::MAX as u64 + 1 {
                        return Ok(Value::Int(i64::MIN));
                    }
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::parse(format!("invalid number `{text}`"), start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_roundtrip_bit_exactly() {
        for &x in &[0.1f64, 1.0 / 3.0, 1e300, -0.0, 5e-324, 123456.789012345] {
            let json = to_vec(&x).unwrap();
            let back: f64 = from_slice(&json).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {:?}", String::from_utf8_lossy(&json));
        }
    }

    #[test]
    fn integers_stay_exact() {
        let n = u64::MAX;
        let back: u64 = from_slice(&to_vec(&n).unwrap()).unwrap();
        assert_eq!(back, n);
        let m = i64::MIN;
        let back: i64 = from_slice(&to_vec(&m).unwrap()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_structures_roundtrip() {
        let v = vec![vec![1.5f64, 2.5], vec![], vec![-3.25]];
        let back: Vec<Vec<f64>> = from_slice(&to_vec_pretty(&v).unwrap()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn string_escapes() {
        let s = "line\none \"two\" \\ tab\tünicode ☃".to_string();
        let back: String = from_slice(&to_vec(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn non_finite_becomes_null_then_nan() {
        let json = to_vec(&f64::NAN).unwrap();
        assert_eq!(json, b"null");
        let back: f64 = from_slice(&json).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn malformed_inputs_error_without_panic() {
        for bad in [
            &b"{"[..],
            b"[1,",
            b"{\"a\" 1}",
            b"tru",
            b"\"unterminated",
            b"1e",
            b"[1] junk",
            b"",
        ] {
            assert!(from_slice::<serde::Value>(bad).is_err(), "{:?}", bad);
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        let mut s = String::new();
        for _ in 0..100_000 {
            s.push('[');
        }
        assert!(from_slice::<serde::Value>(s.as_bytes()).is_err());
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = serde::Value::Object(vec![
            ("a".into(), serde::Value::UInt(1)),
            ("b".into(), serde::Value::Array(vec![serde::Value::Bool(true)])),
        ]);
        let text = String::from_utf8(to_vec_pretty(&v).unwrap()).unwrap();
        assert!(text.contains("\n  \"a\": 1"));
        let back: serde::Value = from_slice(text.as_bytes()).unwrap();
        assert_eq!(back, v);
    }
}
