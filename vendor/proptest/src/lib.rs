//! Vendored offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with `#![proptest_config(...)]`), `Strategy` with
//! `prop_map`/`prop_flat_map`, numeric range strategies, `any::<T>()`,
//! `collection::{vec, btree_set, btree_map}`, tuple strategies,
//! `prop::sample::Index`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from upstream, by design of a minimal stub: **no shrinking**
//! (a failing case reports its inputs and seed verbatim), and generation is
//! deterministic per test name unless `PROPTEST_SEED` overrides the base
//! seed. See `vendor/README.md` for why external crates are vendored.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError, TestRunner,
    };
}

/// Namespace mirror so `prop::sample::Index` resolves like upstream.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

// ---------------------------------------------------------------------------
// RNG — self-contained splitmix64/xorshift, deterministic per test
// ---------------------------------------------------------------------------

/// Deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        // splitmix64 scramble so nearby seeds diverge immediately.
        let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        TestRng { state: (z ^ (z >> 31)) | 1 }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift; bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value: fmt::Debug;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Range + scalar strategies
// ---------------------------------------------------------------------------

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64;
                if span == 0 {
                    // Full-width range; take the raw draw.
                    return rng.next_u64() as $t;
                }
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let x = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                x as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range strategy");
                // Occasionally emit the exact endpoints, which upstream's
                // binary-search shrinking would otherwise find.
                match rng.below(64) {
                    0 => lo as $t,
                    1 => hi as $t,
                    _ => (lo + rng.unit_f64() * (hi - lo)) as $t,
                }
            }
        }
    )*};
}

impl_float_range!(f32, f64);

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized + fmt::Debug {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Upstream's default f64 domain excludes NaN and infinities.
        loop {
            let x = f64::from_bits(rng.next_u64());
            if x.is_finite() {
                return x;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Tuples of strategies
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

pub mod collection {
    use super::*;

    /// Anything usable as a size specification: `n`, `a..b`, `a..=b`.
    pub trait SizeRange {
        fn sample_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn sample_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start < self.end, "empty size range");
            self.start + rng.below((self.end - self.start) as u64) as usize
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn sample_len(&self, rng: &mut TestRng) -> usize {
            assert!(self.start() <= self.end(), "empty size range");
            self.start() + rng.below((self.end() - self.start() + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `vec(element, len)` — a vector whose length is drawn from `len`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.sample_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub struct BTreeSetStrategy<S, L> {
        element: S,
        len: L,
    }

    /// `btree_set(element, len)` — distinct elements; if the element domain
    /// is too small to reach the drawn length, returns what was found.
    pub fn btree_set<S, L>(element: S, len: L) -> BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        BTreeSetStrategy { element, len }
    }

    impl<S, L> Strategy for BTreeSetStrategy<S, L>
    where
        S: Strategy,
        S::Value: Ord,
        L: SizeRange,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.len.sample_len(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 64 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    pub struct BTreeMapStrategy<K, V, L> {
        key: K,
        value: V,
        len: L,
    }

    /// `btree_map(key, value, len)` — distinct keys.
    pub fn btree_map<K, V, L>(key: K, value: V, len: L) -> BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        BTreeMapStrategy { key, value, len }
    }

    impl<K, V, L> Strategy for BTreeMapStrategy<K, V, L>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
        L: SizeRange,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let target = self.len.sample_len(rng);
            let mut out = BTreeMap::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 20 + 64 {
                out.insert(self.key.generate(rng), self.value.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// prop::sample::Index
// ---------------------------------------------------------------------------

pub mod sample {
    use super::{Arbitrary, TestRng};

    /// A deferred index into a collection whose length is known later.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps this draw onto `[0, len)`; panics if `len == 0` (as
        /// upstream does).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

// ---------------------------------------------------------------------------
// Runner + config
// ---------------------------------------------------------------------------

/// Subset of upstream's config: number of cases per test.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..Default::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; the stub trims to 64 to keep the
        // offline test suite fast. Override per-test with `with_cases`.
        ProptestConfig { cases: 64, max_global_rejects: 4096 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure — the property is violated.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Drives the cases of one `proptest!` test.
pub struct TestRunner {
    config: ProptestConfig,
    base_seed: u64,
    name: &'static str,
    rejects: u32,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        let base_seed = match std::env::var("PROPTEST_SEED") {
            Ok(v) => v.trim().parse::<u64>().unwrap_or(0xDEFA117),
            Err(_) => 0xDEFA117,
        };
        // Mix the test name in so sibling tests explore different inputs.
        let mut h = base_seed;
        for b in name.bytes() {
            h = h.wrapping_mul(0x100000001B3) ^ b as u64;
        }
        TestRunner { config, base_seed: h, name, rejects: 0 }
    }

    pub fn cases(&self) -> u32 {
        self.config.cases
    }

    pub fn rng_for(&self, case: u32) -> TestRng {
        TestRng::new(self.base_seed.wrapping_add(case as u64))
    }

    /// Reports one case outcome; panics (failing the `#[test]`) on `Fail`.
    pub fn handle(
        &mut self,
        case: u32,
        result: Result<(), TestCaseError>,
        inputs: String,
    ) {
        match result {
            Ok(()) => {}
            Err(TestCaseError::Reject) => {
                self.rejects += 1;
                if self.rejects > self.config.max_global_rejects {
                    panic!(
                        "proptest {}: too many prop_assume! rejections ({})",
                        self.name, self.rejects
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest {} failed at case {case} (base seed {:#x}):\n  {msg}\n  inputs: {inputs}",
                    self.name, self.base_seed
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let mut runner = $crate::TestRunner::new($cfg, stringify!($name));
            for case in 0..runner.cases() {
                let mut rng = runner.rng_for(case);
                let __vals = ($($crate::Strategy::generate(&($strat), &mut rng),)+);
                let inputs = ::std::format!(
                    concat!("(", $(stringify!($arg), ", ",)+ ") = {:?}"),
                    &__vals
                );
                #[allow(unused_mut)]
                let ($($arg,)+) = __vals;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                runner.handle(case, outcome, inputs);
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($left), stringify!($right), l, r,
                    ::std::format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left), stringify!($right), l
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn int_ranges_respect_bounds(x in 3usize..17, y in 0u8..=255) {
            prop_assert!((3..17).contains(&x));
            let _ = y;
        }

        #[test]
        fn float_range_in_bounds(x in -2.5f64..10.0) {
            prop_assert!((-2.5..10.0).contains(&x), "x = {x}");
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0u32..100, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn sets_are_distinct(s in prop::collection::btree_set(0u64..50, 0..20)) {
            prop_assert!(s.len() <= 20);
        }

        #[test]
        fn flat_map_and_tuples(
            pair in (1usize..5).prop_flat_map(|d| (
                prop::collection::vec(0.0f64..1.0, d),
                Just(d),
            )),
        ) {
            let (v, d) = pair;
            prop_assert_eq!(v.len(), d);
        }

        #[test]
        fn index_maps_into_range(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = crate::TestRng::new(42);
        let mut b = crate::TestRng::new(42);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
