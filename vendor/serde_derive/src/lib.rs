//! Vendored offline `#[derive(Serialize, Deserialize)]` for the serde stub.
//!
//! The offline container has no syn/quote, so this parses the item's token
//! stream by hand and emits code as a string. Supported shapes — the only
//! ones this workspace derives on:
//!
//! - structs with named fields → `Value::Object` keyed by field name;
//! - tuple structs with one field (newtype ids) → transparent inner value;
//! - tuple structs with several fields → `Value::Array`;
//! - enums of unit variants → variant-name string (external tagging);
//! - enum newtype variants → single-key object `{"Variant": inner}`.
//!
//! The supported attributes are `#[serde(default)]` and `#[serde(flatten)]`
//! on a named struct field. `default` substitutes `Default::default()` when
//! the key is absent (schema-evolution escape hatch for persisted traces).
//! `flatten` splices the field's own object entries into the parent object
//! at the field's position on serialization, and hands the whole parent
//! object to the field's `from_value` on deserialization (so a flattened
//! struct of `#[serde(default)]` fields is fully back-compatible). Generics,
//! struct variants, and every other `#[serde(...)]` attribute are rejected
//! with a panic at expansion time rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

/// Per-field serde attributes of a named struct.
#[derive(Clone, Copy, Default)]
struct FieldAttrs {
    default: bool,
    flatten: bool,
}

enum Shape {
    /// `struct S { a: T, b: U }` — fields in declaration order, each with
    /// its `#[serde(...)]` attributes.
    NamedStruct(Vec<(String, FieldAttrs)>),
    /// `struct S(T, U, ...);` — number of unnamed fields.
    TupleStruct(usize),
    /// `enum E { A, B(T), ... }` — `(variant, has_payload)`.
    Enum(Vec<(String, bool)>),
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let (name, shape) = parse_item(input);
    let code = match (&shape, dir) {
        (Shape::NamedStruct(fields), Direction::Serialize) => {
            let entries: String = fields
                .iter()
                .map(|(f, attrs)| {
                    if attrs.flatten {
                        format!(
                            "entries.extend(::serde::__private::flatten(\
                             ::serde::Serialize::to_value(&self.{f}), \
                             \"{name}\", \"{f}\"));"
                        )
                    } else {
                        format!(
                            "entries.push((::std::string::String::from(\"{f}\"), \
                             ::serde::Serialize::to_value(&self.{f})));"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut entries: ::std::vec::Vec<(\
                             ::std::string::String, ::serde::Value)> = \
                             ::std::vec::Vec::new();\n\
                         {entries}\n\
                         ::serde::Value::Object(entries)\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::NamedStruct(fields), Direction::Deserialize) => {
            let entries: String = fields
                .iter()
                .map(|(f, attrs)| {
                    if attrs.flatten {
                        format!("{f}: ::serde::Deserialize::from_value(value)?,")
                    } else if attrs.default {
                        format!(
                            "{f}: match ::serde::__private::opt_field(\
                                 value, \"{name}\", \"{f}\")? {{\n\
                                 ::std::option::Option::Some(v) => \
                                     ::serde::Deserialize::from_value(v)?,\n\
                                 ::std::option::Option::None => \
                                     ::std::default::Default::default(),\n\
                             }},"
                        )
                    } else {
                        format!(
                            "{f}: ::serde::Deserialize::from_value(\
                             ::serde::__private::field(value, \"{name}\", \"{f}\")?)?,"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         ::std::result::Result::Ok({name} {{ {entries} }})\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::TupleStruct(1), Direction::Serialize) => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn to_value(&self) -> ::serde::Value {{\n\
                     ::serde::Serialize::to_value(&self.0)\n\
                 }}\n\
             }}"
        ),
        (Shape::TupleStruct(1), Direction::Deserialize) => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn from_value(value: &::serde::Value) \
                     -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name}(\
                         ::serde::Deserialize::from_value(value)?))\n\
                 }}\n\
             }}"
        ),
        (Shape::TupleStruct(n), Direction::Serialize) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Array(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::TupleStruct(n), Direction::Deserialize) => {
            let entries: String = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match value {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}({entries})),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: expected {n}-element array, got {{other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Direction::Serialize) => {
            let arms: String = variants
                .iter()
                .map(|(v, payload)| {
                    if *payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![\
                             (::std::string::String::from(\"{v}\"), \
                              ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!(
                            "{name}::{v} => \
                             ::serde::Value::Str(::std::string::String::from(\"{v}\")),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
        (Shape::Enum(variants), Direction::Deserialize) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, payload)| !payload)
                .map(|(v, _)| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, payload)| *payload)
                .map(|(v, _)| {
                    format!(
                        "if let ::std::option::Option::Some(inner) = value.get(\"{v}\") {{\n\
                             return ::std::result::Result::Ok(\
                                 {name}::{v}(::serde::Deserialize::from_value(inner)?));\n\
                         }}"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(value: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         if let ::serde::Value::Object(_) = value {{\n\
                             {payload_arms}\n\
                             return ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"{name}: unrecognized variant object\")));\n\
                         }}\n\
                         match ::serde::__private::variant(value, \"{name}\")? {{\n\
                             {unit_arms}\n\
                             other => ::std::result::Result::Err(\
                                 ::serde::__private::unknown_variant(\"{name}\", other)),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive stub produced invalid Rust")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> (String, Shape) {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`, incl. doc comments) and visibility.
    let keyword = loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            Some(TokenTree::Ident(id)) => {
                let kw = id.to_string();
                if kw == "struct" || kw == "enum" {
                    i += 1;
                    break kw;
                }
                panic!("serde_derive stub: unexpected token `{kw}` before item keyword");
            }
            other => panic!("serde_derive stub: unexpected token {other:?}"),
        }
    };
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive stub: expected item name, got {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive stub: generic type `{name}` is not supported");
        }
    }
    let shape = match toks.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if keyword == "struct" {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            } else {
                Shape::Enum(parse_variants(g.stream(), &name))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            assert_eq!(keyword, "struct", "serde_derive stub: bad item body");
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        other => panic!(
            "serde_derive stub: unsupported body for `{name}` (unit struct?): {other:?}"
        ),
    };
    (name, shape)
}

/// Extracts `(name, attrs)` pairs from the brace group of a named struct,
/// honoring `#[serde(default)]` and `#[serde(flatten)]` field attributes.
fn parse_named_fields(body: TokenStream) -> Vec<(String, FieldAttrs)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut attrs = FieldAttrs::default();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = toks.get(i + 1) {
                    match parse_serde_attr(g) {
                        SerdeAttr::Default => attrs.default = true,
                        SerdeAttr::Flatten => attrs.flatten = true,
                        SerdeAttr::None => {}
                    }
                }
                i += 2; // field attribute / doc comment
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            TokenTree::Ident(id) => {
                fields.push((id.to_string(), attrs));
                attrs = FieldAttrs::default();
                i += 1;
                match toks.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
                    other => panic!("serde_derive stub: expected `:`, got {other:?}"),
                }
                // Skip the type up to the next comma at angle-bracket depth 0.
                let mut depth = 0i32;
                while i < toks.len() {
                    match &toks[i] {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            i += 1;
                            break;
                        }
                        _ => {}
                    }
                    i += 1;
                }
            }
            other => panic!("serde_derive stub: unexpected field token {other:?}"),
        }
    }
    fields
}

/// A recognized `#[serde(...)]` field attribute (or the absence of one).
enum SerdeAttr {
    None,
    Default,
    Flatten,
}

/// Inspects one bracketed attribute body. Returns the recognized serde
/// attribute; panics on any other `#[serde(...)]` form (this stub would
/// silently mis-serialize it); `SerdeAttr::None` for non-serde attributes
/// (doc comments etc.).
fn parse_serde_attr(attr: &proc_macro::Group) -> SerdeAttr {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    match toks.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return SerdeAttr::None,
    }
    if let Some(TokenTree::Group(args)) = toks.get(1) {
        let inner: Vec<TokenTree> = args.stream().into_iter().collect();
        if let [TokenTree::Ident(id)] = inner.as_slice() {
            match id.to_string().as_str() {
                "default" => return SerdeAttr::Default,
                "flatten" => return SerdeAttr::Flatten,
                _ => {}
            }
        }
    }
    panic!(
        "serde_derive stub: only #[serde(default)] and #[serde(flatten)] \
         are supported, got #[{attr}]"
    );
}

/// Counts the unnamed fields of a tuple struct body.
fn count_tuple_fields(body: TokenStream) -> usize {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    if toks.is_empty() {
        panic!("serde_derive stub: empty tuple struct is not supported");
    }
    let mut count = 1;
    let mut depth = 0i32;
    let mut trailing = false;
    for (idx, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    if idx + 1 == toks.len() {
                        trailing = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing;
    count
}

/// Extracts `(variant, has_payload)` pairs from an enum body.
fn parse_variants(body: TokenStream, enum_name: &str) -> Vec<(String, bool)> {
    let toks: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) => {
                let variant = id.to_string();
                i += 1;
                let mut payload = false;
                match toks.get(i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                        if inner.iter().any(|t| {
                            matches!(t, TokenTree::Punct(p) if p.as_char() == ',')
                        }) {
                            panic!(
                                "serde_derive stub: multi-field variant \
                                 `{enum_name}::{variant}` is not supported"
                            );
                        }
                        payload = true;
                        i += 1;
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        panic!(
                            "serde_derive stub: struct variant \
                             `{enum_name}::{variant}` is not supported"
                        );
                    }
                    _ => {}
                }
                // Skip an optional `= discriminant` and the trailing comma.
                while i < toks.len() {
                    if let TokenTree::Punct(p) = &toks[i] {
                        if p.as_char() == ',' {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
                variants.push((variant, payload));
            }
            other => panic!("serde_derive stub: unexpected enum token {other:?}"),
        }
    }
    variants
}
