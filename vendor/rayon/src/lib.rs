//! Vendored offline shim for the `rayon` API subset this workspace uses:
//! `par_iter()` / `into_par_iter()` / `par_chunks()` followed by
//! `.map(...).collect()`, plus `join` and `current_num_threads`.
//!
//! Implementation: the input is split into contiguous per-thread segments
//! executed under `std::thread::scope`, and segment outputs are concatenated
//! in input order, so a `map` over pure element-wise functions produces
//! results **byte-identical to the sequential loop regardless of thread
//! count** — the determinism guarantee the workspace's batch-scoring layer
//! documents. On a single-core host (or with `RAYON_NUM_THREADS=1`) no
//! threads are spawned at all.
//!
//! This is not a work-stealing scheduler; it is a correct, dependency-free
//! stand-in so the workspace builds in an offline container (see
//! `vendor/README.md`). Call sites use real-rayon syntax, so swapping in
//! upstream rayon later is a manifest change only.

use std::ops::Range;

pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelSlice};
}

/// Number of worker threads a parallel operation may use.
///
/// Respects `RAYON_NUM_THREADS` (like upstream rayon); otherwise the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs two closures, potentially in parallel, returning both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("rayon::join worker panicked"))
    })
}

/// An eagerly materialized parallel iterator: a list of items waiting for a
/// `map` stage.
pub struct ParallelVec<I> {
    items: Vec<I>,
}

impl<I: Send> ParallelVec<I> {
    /// Applies `f` to every item, in parallel, preserving input order.
    pub fn map<R, F>(self, f: F) -> ParallelMap<I, F>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        ParallelMap { items: self.items, f }
    }

    /// Runs `f` on every item for its side effects.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(I) + Sync,
    {
        self.map(f).run();
    }

    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A pending order-preserving parallel map.
pub struct ParallelMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send, F> ParallelMap<I, F> {
    /// Executes the map and collects the (input-ordered) outputs.
    ///
    /// `C` is built with `FromIterator` from the ordered results, so
    /// `collect::<Vec<_>>()` and `collect::<Result<Vec<_>, E>>()` both work.
    pub fn collect<R, C>(self) -> C
    where
        F: Fn(I) -> R + Sync,
        R: Send,
        C: FromIterator<R>,
    {
        self.run().into_iter().collect()
    }

    fn run<R>(self) -> Vec<R>
    where
        F: Fn(I) -> R + Sync,
        R: Send,
    {
        let ParallelMap { items, f } = self;
        let n = items.len();
        let threads = current_num_threads().min(n).max(1);
        if threads <= 1 {
            return items.into_iter().map(f).collect();
        }
        // Contiguous segments, at most `threads` of them, concatenated in
        // order after the join — order preservation is what makes the
        // parallel path bit-identical to sequential execution.
        let per = n.div_ceil(threads);
        let mut segments: Vec<Vec<I>> = Vec::with_capacity(threads);
        let mut rest = items;
        while rest.len() > per {
            let tail = rest.split_off(per);
            segments.push(std::mem::replace(&mut rest, tail));
        }
        segments.push(rest);
        let f = &f;
        std::thread::scope(|s| {
            let handles: Vec<_> = segments
                .into_iter()
                .map(|seg| s.spawn(move || seg.into_iter().map(f).collect::<Vec<R>>()))
                .collect();
            let mut out = Vec::with_capacity(n);
            for h in handles {
                out.extend(h.join().expect("rayon worker panicked"));
            }
            out
        })
    }
}

/// `into_par_iter()` — consumes the collection, yielding owned items.
pub trait IntoParallelIterator {
    type Item: Send;
    fn into_par_iter(self) -> ParallelVec<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParallelVec<T> {
        ParallelVec { items: self }
    }
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParallelVec<usize> {
        ParallelVec { items: self.collect() }
    }
}

/// `par_iter()` — yields shared references into the collection.
pub trait IntoParallelRefIterator<'data> {
    type Item: Sync + 'data;
    fn par_iter(&'data self) -> ParallelVec<&'data Self::Item>;
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParallelVec<&'data T> {
        ParallelVec { items: self.iter().collect() }
    }
}

impl<'data, T: Sync + Send + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParallelVec<&'data T> {
        ParallelVec { items: self.iter().collect() }
    }
}

/// `par_chunks(n)` — yields contiguous subslices of length `n` (last one
/// possibly shorter).
pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, chunk_size: usize) -> ParallelVec<&[T]>;
}

impl<T: Sync + Send> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParallelVec<&[T]> {
        assert!(chunk_size > 0, "chunk_size must be positive");
        ParallelVec { items: self.chunks(chunk_size).collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, xs.iter().map(|&x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn collect_into_result_short_circuits_to_err() {
        let xs = vec![1i64, 2, -3, 4];
        let r: Result<Vec<i64>, String> = xs
            .par_iter()
            .map(|&x| if x < 0 { Err(format!("neg {x}")) } else { Ok(x) })
            .collect();
        assert_eq!(r, Err("neg -3".to_string()));
    }

    #[test]
    fn par_chunks_cover_everything() {
        let xs: Vec<u32> = (0..1000).collect();
        let sums: Vec<u32> = xs.par_chunks(64).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.iter().sum::<u32>(), xs.iter().sum::<u32>());
        assert_eq!(sums.len(), 1000usize.div_ceil(64));
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn into_par_iter_over_range() {
        let squares: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * i).collect();
        assert_eq!(squares[99], 9801);
    }
}
