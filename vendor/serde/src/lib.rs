//! Vendored offline stand-in for `serde`.
//!
//! The real serde visits a serializer; this stub goes through an explicit
//! in-memory [`Value`] data model instead: `Serialize` renders a value tree
//! and `Deserialize` rebuilds a type from one. `vendor/serde_json` then maps
//! the tree to/from JSON text. That covers everything this workspace needs
//! (derived structs with named fields, newtype ids, unit-variant enums, the
//! std scalar/collection types) while staying dependency-free for the
//! offline build container — see `vendor/README.md`.
//!
//! Determinism note: `Object` keeps declaration order, so serialized output
//! is stable across runs.

use std::fmt;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
///
/// Integers keep their exact 64-bit representation (`UInt`/`Int`) so row
/// counts and ids round-trip without passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an `Object` by name.
    pub fn get(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => {
                fields.iter().find(|(k, _)| k == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }
}

/// Error produced while rebuilding a type from a [`Value`].
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Scalar impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::UInt(n) => *n,
                    Value::Int(n) if *n >= 0 => *n as u64,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        concat!("integer {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let n = match value {
                    Value::Int(n) => *n,
                    Value::UInt(n) if *n <= i64::MAX as u64 => *n as i64,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!(
                        concat!("integer {} out of range for ", stringify!($t)),
                        n
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(x) => Ok(*x),
            Value::UInt(n) => Ok(*n as f64),
            Value::Int(n) => Ok(*n as f64),
            // serde_json writes non-finite floats as null; map back to NaN.
            Value::Null => Ok(f64::NAN),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) if items.len() == 2 => {
                Ok((A::from_value(&items[0])?, B::from_value(&items[1])?))
            }
            other => Err(Error::custom(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

// ---------------------------------------------------------------------------
// Support for derive-generated code
// ---------------------------------------------------------------------------

/// Helpers referenced by `serde_derive`-generated code. Not public API.
#[doc(hidden)]
pub mod __private {
    use super::{Error, Value};

    /// Looks up a required struct field in an `Object` value.
    pub fn field<'a>(value: &'a Value, ty: &str, name: &str) -> Result<&'a Value, Error> {
        match value {
            Value::Object(_) => value
                .get(name)
                .ok_or_else(|| Error::custom(format!("{ty}: missing field `{name}`"))),
            other => Err(Error::custom(format!("{ty}: expected object, got {other:?}"))),
        }
    }

    /// Looks up a `#[serde(default)]` struct field; `Ok(None)` when absent.
    pub fn opt_field<'a>(
        value: &'a Value,
        ty: &str,
        name: &str,
    ) -> Result<Option<&'a Value>, Error> {
        match value {
            Value::Object(_) => Ok(value.get(name)),
            other => Err(Error::custom(format!("{ty}: expected object, got {other:?}"))),
        }
    }

    /// Extracts the variant string of a unit-variant enum.
    pub fn variant<'a>(value: &'a Value, ty: &str) -> Result<&'a str, Error> {
        match value {
            Value::Str(s) => Ok(s),
            other => Err(Error::custom(format!(
                "{ty}: expected variant string, got {other:?}"
            ))),
        }
    }

    pub fn unknown_variant(ty: &str, got: &str) -> Error {
        Error::custom(format!("{ty}: unknown variant `{got}`"))
    }

    /// Splices a `#[serde(flatten)]` field's object entries into the parent
    /// object. `Serialize::to_value` is infallible, so a non-object flattened
    /// value is a programming error and panics with the field's location.
    pub fn flatten(value: Value, ty: &str, name: &str) -> Vec<(String, Value)> {
        match value {
            Value::Object(entries) => entries,
            other => panic!(
                "{ty}.{name}: #[serde(flatten)] requires an object field, got {other:?}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn unsigned_range_checked() {
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(u64::from_value(&Value::Int(-1)).is_err());
    }

    #[test]
    fn vec_and_option() {
        let v = vec![1u32, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u32>::from_value(&Value::UInt(9)).unwrap(),
            Some(9)
        );
    }

    #[test]
    fn nan_survives_as_null() {
        let x = f64::from_value(&Value::Null).unwrap();
        assert!(x.is_nan());
    }
}
