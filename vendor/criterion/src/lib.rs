//! Vendored offline stand-in for `criterion`.
//!
//! Provides the API subset this workspace's `benches/` use — benchmark
//! groups, `bench_function`, `iter`, `iter_batched`, `Throughput`,
//! `sample_size`, and the `criterion_group!`/`criterion_main!` macros —
//! with a simple median-of-samples timer instead of criterion's full
//! statistical machinery. Each benchmark is time-boxed so the whole suite
//! stays fast on the offline runner. See `vendor/README.md`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark context.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 30, throughput: None }
    }

    /// Upstream parses CLI filters here; the stub accepts and ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Units of work per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// How `iter_batched` amortizes setup; the stub runs one setup per
/// measured invocation regardless, so the variants only exist for API
/// compatibility.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            budget: Duration::from_millis(200),
            max_samples: self.sample_size,
        };
        f(&mut bencher);
        let median = bencher.median_ns();
        let mut line = format!("  {}/{id}: {} ns/iter", self.name, median);
        if let (Some(t), true) = (self.throughput, median > 0) {
            match t {
                Throughput::Bytes(b) => {
                    let gib = b as f64 / median as f64; // bytes/ns == GiB-ish/s
                    line.push_str(&format!(" ({gib:.3} GB/s)"));
                }
                Throughput::Elements(n) => {
                    let eps = n as f64 / (median as f64 / 1e9);
                    line.push_str(&format!(" ({eps:.0} elem/s)"));
                }
            }
        }
        println!("{line}");
        self
    }

    pub fn finish(self) {}
}

/// Runs and times the measured routine.
pub struct Bencher {
    samples: Vec<u64>,
    budget: Duration,
    max_samples: usize,
}

impl Bencher {
    /// Times `f`, repeating until the sample target or time budget is hit.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        black_box(f()); // warm-up, untimed
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }

    /// Times `routine` on fresh input from `setup`; setup time is excluded.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        black_box(routine(setup())); // warm-up, untimed
        let started = Instant::now();
        while self.samples.len() < self.max_samples && started.elapsed() < self.budget {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed().as_nanos() as u64);
        }
    }

    fn median_ns(&self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let mut s = self.samples.clone();
        s.sort_unstable();
        s[s.len() / 2]
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("stub");
        group.sample_size(5);
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u64; 512],
                |v| v.iter().sum::<u64>(),
                BatchSize::PerIteration,
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_runs() {
        benches();
    }
}
